package core

import (
	"errors"
	"fmt"

	"hybridgc/internal/mvcc"
	"hybridgc/internal/ts"
	"hybridgc/internal/wal"
)

// Replication apply path: a replica replays the primary's WAL stream into
// its own engine through these methods. Unlike crash recovery — which
// installs bare table-space images because no snapshot can exist at restart
// — the live apply path goes through the version space at the original
// primary CIDs, so concurrent replica readers keep full snapshot isolation
// while the stream advances underneath them. The methods bypass the
// ReadOnly gate (they ARE the replica's write path) and must be called from
// a single applier goroutine.

// ErrNotEmpty reports a checkpoint bootstrap attempted on an engine that has
// already committed or applied state.
var ErrNotEmpty = errors.New("core: checkpoint apply requires an empty database")

// ApplyCheckpoint installs a primary checkpoint into an empty engine: the
// catalog, every record's image, the RID allocator positions, and the
// checkpoint CID as the commit timestamp. This is the replica bootstrap;
// stream records with CID <= the checkpoint CID are covered and must be
// skipped by the applier (ApplyRecord does so).
func (db *DB) ApplyCheckpoint(ck *wal.Checkpoint) error {
	if err := db.fail.check(); err != nil {
		return err
	}
	if db.m.CurrentTS() != 0 || len(db.cat.Tables()) != 0 {
		return ErrNotEmpty
	}
	for _, t := range ck.Tables {
		tbl, err := db.cat.Restore(t.ID, t.Name)
		if err != nil {
			return err
		}
		for _, r := range t.Records {
			rec, err := tbl.CreateRecord(r.RID)
			if err != nil {
				return err
			}
			rec.InstallImage(r.Image)
		}
		tbl.EnsureNextRID(t.NextRID)
	}
	db.m.SetCommitTS(ck.CID)
	db.asm.Reset()
	return nil
}

// ApplyDDL registers a replicated table under its primary-assigned ID.
// Idempotent: a table already present (from the checkpoint, or a replayed
// duplicate) is left alone.
func (db *DB) ApplyDDL(id ts.TableID, name string) error {
	if err := db.fail.check(); err != nil {
		return err
	}
	if db.cat.ByID(id) != nil {
		return nil
	}
	_, err := db.cat.Restore(id, name)
	return err
}

// ApplyGroup replays one commit group at its primary CID: every operation
// becomes a version prepended to its record's chain (no conflict check —
// the primary already serialized these writes), and the group is published
// through the transaction manager exactly like a local group commit. A CID
// at or below the current commit timestamp is a duplicate (stream overlap,
// or coverage by the bootstrap checkpoint) and is skipped.
func (db *DB) ApplyGroup(cid ts.CID, ops []wal.Op) error {
	if err := db.fail.check(); err != nil {
		return err
	}
	if cid <= db.m.CurrentTS() {
		return nil
	}
	tc := mvcc.NewTransContext(0) // replicated groups carry no local txn ID
	for _, op := range ops {
		tbl := db.cat.ByID(op.Table)
		if tbl == nil {
			return fmt.Errorf("core: replicated group %d references unknown table %d", cid, op.Table)
		}
		rec := tbl.Get(op.RID)
		if op.Op == mvcc.OpInsert {
			if rec != nil {
				return fmt.Errorf("core: replicated insert into existing record %d/%d", op.Table, op.RID)
			}
			var err error
			rec, err = tbl.CreateRecord(op.RID)
			if err != nil {
				return err
			}
			tbl.EnsureNextRID(op.RID)
		} else if rec == nil {
			return fmt.Errorf("core: replicated %v on missing record %d/%d", op.Op, op.Table, op.RID)
		}
		v := mvcc.NewVersion(op.Op, ts.RecordKey{Table: op.Table, RID: op.RID}, op.Payload, tc)
		if _, err := db.space.Prepend(rec, v, nil); err != nil {
			return err
		}
		tc.Add(v)
	}
	db.statements.Add(int64(len(ops)))
	return db.m.PublishReplicated(cid, tc)
}

// ApplyRecord replays one WAL record (the unit the replication stream
// ships), dispatching on its kind. Multi-part commit groups are buffered in
// the engine's assembler and applied only once complete: the stream can
// legitimately carry the torn prefix of a batch (the tail of a crashed
// primary's segment, shipped verbatim during catch-up), and such a group —
// whose commit was never acknowledged — must vanish, not half-apply. The
// assembler's drop/error rules are documented on wal.GroupAssembler.
func (db *DB) ApplyRecord(r *wal.Record) error {
	switch r.Kind {
	case wal.KindDDL:
		db.asm.Abandon()
		return db.ApplyDDL(r.TableID, r.TableName)
	case wal.KindGroup:
		cid, ops, done, err := db.asm.Feed(r)
		if err != nil {
			return err
		}
		if !done {
			return nil
		}
		return db.ApplyGroup(cid, ops)
	case wal.KindHTAPLane:
		// Lane enablement replicates as metadata only: the replica remembers
		// it (rememberLane) so a promoted replica re-enables the same lanes;
		// chunks rebuild locally from the applied table state.
		db.asm.Abandon()
		db.rememberLane(r.TableID, r.TableName, r.CID)
		return nil
	default:
		return fmt.Errorf("core: replicated record of unknown kind %d", r.Kind)
	}
}
