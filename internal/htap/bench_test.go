package htap

import (
	"testing"

	"hybridgc/internal/colstore"
	"hybridgc/internal/core"
	"hybridgc/internal/ts"
	"hybridgc/internal/txn"
)

// BenchmarkOLAPScan measures the aggregate executor across lane states: the
// fully-migrated column path versus the pure row path over identical data,
// plus a delta-heavy lane (half the table un-migrated) in between. The
// column/chunked-to-row ratio is the headline speedup ISSUE acceptance asks
// for (>=5x on settled data).
func BenchmarkOLAPScan(b *testing.B) {
	const rows = 20000
	setup := func(b *testing.B, migrate int) (*Store, ts.TableID) {
		b.Helper()
		db, err := core.Open(core.Config{Txn: txn.Config{SynchronousPropagation: true}})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(db.Close)
		tid, err := db.CreateTable("FACTS")
		if err != nil {
			b.Fatal(err)
		}
		st, err := NewStore(db, Config{ChunkSlots: 4096})
		if err != nil {
			b.Fatal(err)
		}
		if err := st.EnableTable(tid, laneSchema); err != nil {
			b.Fatal(err)
		}
		regions := []string{"emea", "apj", "amer", "latam"}
		insert := func(lo, hi int) {
			for base := lo; base < hi; base += 512 {
				n := hi - base
				if n > 512 {
					n = 512
				}
				if err := db.Exec(txn.StmtSI, nil, func(tx *core.Tx) error {
					for i := 0; i < n; i++ {
						img, _ := colstore.EncodeRow(laneSchema, colstore.Row{
							colstore.IntV(int64(base + i)), colstore.StrV(regions[(base+i)%4]),
						})
						if _, err := tx.Insert(tid, img); err != nil {
							return err
						}
					}
					return nil
				}); err != nil {
					b.Fatal(err)
				}
			}
		}
		insert(0, migrate)
		if migrate > 0 {
			db.GC().Collect()
			st.Migrate()
		}
		insert(migrate, rows)
		return st, tid
	}

	run := func(b *testing.B, st *Store, tid ts.TableID, spec AggSpec) {
		b.Helper()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := st.Aggregate(tid, spec)
			if err != nil {
				b.Fatal(err)
			}
			if res.Groups[0].Count == 0 {
				b.Fatal("empty aggregate")
			}
		}
		b.SetBytes(rows * 8)
	}

	for _, bc := range []struct {
		name    string
		migrate int
	}{
		{"column/chunked", rows}, // fully settled and migrated: pure vectors
		{"column/delta-heavy", rows / 2},
		{"row", 0}, // lane enabled, nothing migrated: pure MVCC row reads
	} {
		b.Run("sum/"+bc.name, func(b *testing.B) {
			st, tid := setup(b, bc.migrate)
			run(b, st, tid, AggSpec{Op: AggSum, Col: "amount"})
		})
	}
	b.Run("groupby/column/chunked", func(b *testing.B) {
		st, tid := setup(b, rows)
		run(b, st, tid, AggSpec{Op: AggSum, Col: "amount", GroupBy: "region"})
	})
	b.Run("groupby/row", func(b *testing.B) {
		st, tid := setup(b, 0)
		run(b, st, tid, AggSpec{Op: AggSum, Col: "amount", GroupBy: "region"})
	})
}
