// Package htap is the HTAP column lane over the row-store engine: a
// background migrator that ships settled row versions — versions already
// below the garbage-collection horizon, whose table-space image is the one
// every registered snapshot sees — into immutable, dictionary-encoded
// column chunks, plus a vectorized aggregate executor (exec.go) that scans
// the chunks and falls back to MVCC row reads for everything the chunks
// cannot vouch for.
//
// This is §2.1's row/column split made concrete under one MVCC engine: OLTP
// keeps writing row versions; the lane turns the settled tail of each table
// into columnar main storage; OLAP aggregates run over the vectors at
// memory speed while the un-migrated delta tail and any row the chunks no
// longer speak for (the dirty set) go through ordinary snapshot reads.
//
// The consistency contract, per table:
//
//   - Every chunk is stamped with a watermark W, the timestamp of a
//     statement snapshot the migrator REGISTERED and held for the whole
//     build. Registration pins the garbage-collection horizon at or below
//     W, so nothing the build reads is reshaped underneath it.
//   - Only settled rows enter a chunk: a row that still has a version chain
//     is skipped and marked dirty, because some registered snapshot may
//     still need an older (or not-yet-committed newer) version — the
//     migrator never migrates a version another snapshot may still
//     need. This is the visibility guard; htap_test.go proves both
//     directions (guard on: pinned cursors block migration; guard
//     reverted: a scan observes a wrong aggregate).
//   - A write observer on the table space keeps a sticky per-RID dirty set:
//     any mutation of a chunk-covered row (new version, GC settle, drop)
//     dirties it, and dirty rows are served by row reads until a later
//     rebuild re-settles them. The observer bound (coverTarget) is
//     published BEFORE the build reads anything, closing the race with
//     concurrent writers.
//   - A scan at snapshot TS serves a chunk's present, clean slots from the
//     vectors iff TS >= the chunk's watermark; otherwise (a snapshot older
//     than the chunk) the whole range falls back to row reads.
//
// Chunks are never persisted. Lane enablement is one WAL record
// (wal.KindHTAPLane, re-logged by checkpoints); after recovery the lane
// manager re-enables each recorded lane and the migrator rebuilds chunks
// from the recovered table state.
package htap

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hybridgc/internal/colstore"
	"hybridgc/internal/core"
	"hybridgc/internal/ts"
	"hybridgc/internal/txn"
)

// Errors returned by the lane.
var (
	// ErrNoLane reports an aggregate or migration request for a table with
	// no enabled column lane.
	ErrNoLane = errors.New("htap: no column lane enabled for table")
	// ErrLaneExists reports EnableTable on a table that already has a lane
	// with a different schema.
	ErrLaneExists = errors.New("htap: lane already enabled with a different schema")
)

// Config tunes a Store.
type Config struct {
	// Interval is the background migrator period (<=0 selects 25ms).
	Interval time.Duration
	// ChunkSlots is the RID range length of one chunk (<=0 selects 4096).
	ChunkSlots int
	// MaxDictSize bounds each chunk string column's dictionary (<=0 selects
	// colstore.DefaultMaxDictSize). Overflowing rows stay on the row path
	// and are counted in LaneStats.DictOverflows — loudly visible, never
	// silently unbounded.
	MaxDictSize int
}

func (c *Config) fill() {
	if c.Interval <= 0 {
		c.Interval = 25 * time.Millisecond
	}
	if c.ChunkSlots <= 0 {
		c.ChunkSlots = 4096
	}
	if c.MaxDictSize <= 0 {
		c.MaxDictSize = colstore.DefaultMaxDictSize
	}
}

// laneChunk is one sealed chunk plus the RID the build actually considered
// rows through: slots above builtThrough existed as range but not as rows
// at build time, and the executor row-reads them until a rebuild extends
// the chunk.
type laneChunk struct {
	chunk        *colstore.Chunk
	builtThrough ts.RID
}

// Lane is one table's column lane.
type Lane struct {
	tid    ts.TableID
	schema colstore.Schema

	// coverTarget is the observer bound: writes to RIDs <= coverTarget mark
	// the dirty set. Published at the START of a migrator pass, before any
	// row is read, so a concurrent writer cannot slip a mutation between
	// the build's read and the chunk swap unobserved. Fresh inserts (RID
	// beyond it) are skipped with one atomic load — the OLTP fast path.
	coverTarget atomic.Uint64
	// coveredHi is the RID range chunks authoritatively cover, advanced at
	// the END of a completed pass. rid <= coveredHi: chunk slot (or dirty /
	// row fallback); rid > coveredHi: delta tail, always row-read.
	coveredHi atomic.Uint64

	mu     sync.RWMutex // guards chunks (swapped whole on rebuild)
	chunks []laneChunk

	// dirty maps a chunk-covered RID whose chunk value can no longer be
	// trusted to a monotonically increasing stamp. The stamp lets the
	// migrator clear a flag only if no write arrived after it read the row:
	// clears happen strictly AFTER the chunk swap, so a scan that copies
	// the dirty set before the chunk list can never pair an old chunk with
	// a shrunken dirty set (the stale-read race the stamp protocol closes).
	dirtyMu  sync.Mutex
	dirty    map[ts.RID]uint64
	dirtyCtr uint64

	// Counters surfaced through LaneStats.
	migratedRows  atomic.Int64
	rebuilds      atomic.Int64
	passes        atomic.Int64
	dictOverflows atomic.Int64
	decodeErrors  atomic.Int64
}

// markDirty is the write-observer slow path: the row is chunk-covered (or
// about to be), so its chunk value can no longer be trusted. Each mark
// bumps the stamp so an in-flight migrator pass cannot clear the flag for
// a write it did not read.
func (l *Lane) markDirty(rid ts.RID) {
	l.dirtyMu.Lock()
	l.dirtyCtr++
	l.dirty[rid] = l.dirtyCtr
	l.dirtyMu.Unlock()
}

// dirtyStamp returns rid's current stamp (0: clean).
func (l *Lane) dirtyStamp(rid ts.RID) uint64 {
	l.dirtyMu.Lock()
	s := l.dirty[rid]
	l.dirtyMu.Unlock()
	return s
}

// clearIfStamp clears rid's dirty flag iff no write stamped it since the
// migrator read the row. Called only after the chunk swap.
func (l *Lane) clearIfStamp(rid ts.RID, stamp uint64) {
	l.dirtyMu.Lock()
	if l.dirty[rid] == stamp {
		delete(l.dirty, rid)
	}
	l.dirtyMu.Unlock()
}

// dirtySnapshot copies the dirty set for one scan.
func (l *Lane) dirtySnapshot() map[ts.RID]struct{} {
	l.dirtyMu.Lock()
	defer l.dirtyMu.Unlock()
	if len(l.dirty) == 0 {
		return nil
	}
	out := make(map[ts.RID]struct{}, len(l.dirty))
	for rid := range l.dirty {
		out[rid] = struct{}{}
	}
	return out
}

func (l *Lane) dirtyLen() int {
	l.dirtyMu.Lock()
	defer l.dirtyMu.Unlock()
	return len(l.dirty)
}

// snapshotChunks returns the current sealed chunk list.
func (l *Lane) snapshotChunks() []laneChunk {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.chunks
}

// Store runs the column lane over one engine instance (one shard). Lanes
// are enabled per table; one background goroutine migrates all of them.
type Store struct {
	db  *core.DB
	cfg Config

	mu    sync.RWMutex
	lanes map[ts.TableID]*Lane

	stop chan struct{}
	done chan struct{}

	// guardOff disables the visibility guard — the migrator then treats
	// still-chained rows as settled, reading them at the build watermark
	// and NOT marking them dirty. Only the guard-regression test sets it;
	// with it on, a version still visible to a registered snapshot can be
	// migrated over, which is exactly the bug the guard exists to prevent.
	guardOff atomic.Bool
}

// NewStore builds a lane store over db and re-enables every lane the
// engine has on record (recovered from the log, or applied from a
// replication stream).
func NewStore(db *core.DB, cfg Config) (*Store, error) {
	cfg.fill()
	s := &Store{db: db, cfg: cfg, lanes: make(map[ts.TableID]*Lane)}
	for tid, meta := range db.HTAPLanes() {
		schema, err := colstore.ParseSpec(meta.Spec)
		if err != nil {
			return nil, fmt.Errorf("htap: recovered lane for table %d: %w", tid, err)
		}
		if err := s.EnableTable(tid, schema); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// DB returns the engine instance the store runs over.
func (s *Store) DB() *core.DB { return s.db }

// EnableTable enables the column lane for a table: installs the write
// observer, records enablement durably (one wal.KindHTAPLane record), and
// leaves chunk building to the migrator. Idempotent for an identical
// schema.
func (s *Store) EnableTable(tid ts.TableID, schema colstore.Schema) error {
	if err := schema.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	if l := s.lanes[tid]; l != nil {
		s.mu.Unlock()
		if l.schema.Spec() != schema.Spec() {
			return fmt.Errorf("%w: table %d has %q, requested %q", ErrLaneExists, tid, l.schema.Spec(), schema.Spec())
		}
		return nil
	}
	lane := &Lane{tid: tid, schema: schema, dirty: make(map[ts.RID]uint64)}
	s.lanes[tid] = lane
	s.mu.Unlock()

	if err := s.db.ObserveTableWrites(tid, func(rid ts.RID) {
		if uint64(rid) <= lane.coverTarget.Load() {
			lane.markDirty(rid)
		}
	}); err != nil {
		s.mu.Lock()
		delete(s.lanes, tid)
		s.mu.Unlock()
		return err
	}
	return s.db.EnableHTAPLane(tid, schema.Spec(), s.db.Manager().CurrentTS())
}

// lane returns the table's lane, or nil.
func (s *Store) lane(tid ts.TableID) *Lane {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.lanes[tid]
}

// Enabled reports whether the table has a column lane.
func (s *Store) Enabled(tid ts.TableID) bool { return s.lane(tid) != nil }

// Tables lists the lane-enabled tables in ID order.
func (s *Store) Tables() []ts.TableID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]ts.TableID, 0, len(s.lanes))
	for tid := range s.lanes {
		out = append(out, tid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Start launches the background migrator. Stop ends it.
func (s *Store) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stop != nil {
		return
	}
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	go s.run(s.stop, s.done)
}

// Stop halts the background migrator and waits for the in-flight pass.
func (s *Store) Stop() {
	s.mu.Lock()
	stop, done := s.stop, s.done
	s.stop, s.done = nil, nil
	s.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

func (s *Store) run(stop, done chan struct{}) {
	defer close(done)
	tick := time.NewTicker(s.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			s.Migrate()
		case <-stop:
			return
		}
	}
}

// Migrate runs one migration pass over every lane (the manual form the
// background loop calls periodically; tests and examples call it directly).
// It returns the number of rows newly placed into chunks.
func (s *Store) Migrate() int {
	s.mu.RLock()
	lanes := make([]*Lane, 0, len(s.lanes))
	for _, l := range s.lanes {
		lanes = append(lanes, l)
	}
	s.mu.RUnlock()
	total := 0
	for _, l := range lanes {
		total += s.migrateLane(l)
	}
	return total
}

// migrateLane runs one pass for one lane: publish the observer bound,
// register the build snapshot (the watermark), build or rebuild every chunk
// that needs it, swap, advance coveredHi.
func (s *Store) migrateLane(l *Lane) int {
	maxRID, err := s.db.TableMaxRID(l.tid)
	if err != nil || maxRID == 0 {
		return 0
	}
	// Publish the observer bound before reading anything: from here on,
	// every mutation of a row the pass may read lands in the dirty set.
	if cur := l.coverTarget.Load(); cur < uint64(maxRID) {
		l.coverTarget.Store(uint64(maxRID))
	}

	// The build snapshot. Registering it pins this table's GC horizon at or
	// below W for the whole build: the settled images the pass reads are
	// exactly the versions visible at W, and nothing reshapes them
	// mid-build.
	snap := s.db.Manager().AcquireSnapshot(txn.KindStatement, []ts.TableID{l.tid})
	defer snap.Release()
	w := snap.TS()

	old := l.snapshotChunks()
	slots := ts.RID(s.cfg.ChunkSlots)
	nChunks := int((maxRID + slots - 1) / slots)

	// Bucket the dirty set by chunk index to decide rebuilds cheaply.
	dirtyByChunk := make(map[int]int)
	l.dirtyMu.Lock()
	for rid := range l.dirty {
		dirtyByChunk[int((rid-1)/slots)]++
	}
	l.dirtyMu.Unlock()

	next := make([]laneChunk, nChunks)
	migrated := 0
	changed := false
	var clears []ridStamp
	for i := 0; i < nChunks; i++ {
		base := ts.RID(i)*slots + 1
		end := base + slots - 1
		if end > maxRID {
			end = maxRID
		}
		if i < len(old) {
			lc := old[i]
			// Keep a sealed chunk as-is unless it has dirty rows to
			// re-settle or the table grew into its range.
			if dirtyByChunk[i] == 0 && lc.builtThrough >= end {
				next[i] = lc
				continue
			}
		}
		lc, n, cl := s.buildChunk(l, base, end, w)
		if lc.chunk == nil {
			// Builder setup failed (cannot happen with a validated schema);
			// leave the range to the row path.
			if i < len(old) {
				next[i] = old[i]
			}
			continue
		}
		next[i] = lc
		migrated += n
		clears = append(clears, cl...)
		changed = true
		l.rebuilds.Add(1)
	}

	l.passes.Add(1)
	if !changed && uint64(maxRID) <= l.coveredHi.Load() {
		return 0
	}
	l.mu.Lock()
	l.chunks = next
	l.mu.Unlock()
	l.coveredHi.Store(uint64(maxRID))
	// Only now — after the swap — may dirty flags fall, and only for rows
	// no write stamped since the build read them. A scan that copied the
	// dirty set before this point pairs it with the old chunks (row path:
	// always correct); one that copies it after sees the new chunks.
	for _, c := range clears {
		l.clearIfStamp(c.rid, c.stamp)
	}
	l.migratedRows.Add(int64(migrated))
	return migrated
}

// ridStamp is a deferred dirty-clear: rid may be cleaned iff its stamp is
// still the one the build observed.
type ridStamp struct {
	rid   ts.RID
	stamp uint64
}

// buildChunk settles one RID range into a fresh chunk at watermark w,
// returning it, the number of rows placed, and the deferred dirty-clears
// the caller applies after the swap.
func (s *Store) buildChunk(l *Lane, base, end ts.RID, w ts.CID) (laneChunk, int, []ridStamp) {
	b, err := colstore.NewChunkBuilder(l.schema, base, s.cfg.ChunkSlots, s.cfg.MaxDictSize)
	if err != nil {
		return laneChunk{}, 0, nil
	}
	placed := 0
	var clears []ridStamp
	for rid := base; rid <= end; rid++ {
		// Record the dirty stamp BEFORE reading the row: a write landing
		// after the read bumps the stamp, and the deferred clear backs off.
		stamp := l.dirtyStamp(rid)
		img, versioned, ok := s.db.RecordState(l.tid, rid)
		if !ok {
			// Hole or dropped row: the chunk slot is authoritatively absent.
			if stamp != 0 {
				clears = append(clears, ridStamp{rid, stamp})
			}
			continue
		}
		if versioned {
			// THE VISIBILITY GUARD. The row still has a version chain: its
			// table-space image is not the final word — a registered
			// snapshot (a pinned cursor, an old transaction) may still need
			// a chain version, or the chain may hold a newer version this
			// build's watermark must not leak past. Leave the row to the
			// MVCC row path and let a later pass migrate it once the
			// garbage collector has settled the chain below the horizon.
			if !s.guardOff.Load() {
				l.markDirty(rid)
				continue
			}
			// Guard reverted (test-only): migrate whatever is visible at
			// the build watermark and pretend the row is settled.
			img, ok = s.db.ReadAt(l.tid, rid, w)
			if !ok {
				continue
			}
		}
		row, err := colstore.DecodeRow(l.schema, img)
		if err != nil {
			l.decodeErrors.Add(1)
			l.markDirty(rid)
			continue
		}
		if err := b.Set(rid, row); err != nil {
			if errors.Is(err, colstore.ErrDictOverflow) {
				l.dictOverflows.Add(1)
			}
			l.markDirty(rid)
			continue
		}
		placed++
		if stamp != 0 {
			clears = append(clears, ridStamp{rid, stamp})
		}
	}
	return laneChunk{chunk: b.Seal(w), builtThrough: end}, placed, clears
}

// LaneStats is a point-in-time view of one lane.
type LaneStats struct {
	Table ts.TableID
	// Chunks and ChunkRows describe sealed columnar coverage.
	Chunks    int
	ChunkRows int64
	// CoveredRID is the RID range chunks authoritatively cover; DeltaRows
	// is the un-migrated tail beyond it (MaxRID - CoveredRID).
	CoveredRID ts.RID
	DeltaRows  int64
	// DirtyRows is the sticky dirty set size — chunk-covered rows currently
	// served by the row path.
	DirtyRows int64
	// Watermark is the oldest chunk watermark; Lag is the current commit
	// timestamp minus it — how far the columnar image trails the log.
	Watermark ts.CID
	Lag       ts.CID
	// MigratedRows counts rows ever placed into chunks; Rebuilds counts
	// chunk (re)builds; Passes counts migrator passes.
	MigratedRows  int64
	Rebuilds      int64
	Passes        int64
	DictOverflows int64
	DecodeErrors  int64
}

// Stats reports every lane's state, in table-ID order.
func (s *Store) Stats() []LaneStats {
	cur := s.db.Manager().CurrentTS()
	var out []LaneStats
	for _, tid := range s.Tables() {
		l := s.lane(tid)
		if l == nil {
			continue
		}
		st := LaneStats{
			Table:         tid,
			CoveredRID:    ts.RID(l.coveredHi.Load()),
			DirtyRows:     int64(l.dirtyLen()),
			MigratedRows:  l.migratedRows.Load(),
			Rebuilds:      l.rebuilds.Load(),
			Passes:        l.passes.Load(),
			DictOverflows: l.dictOverflows.Load(),
			DecodeErrors:  l.decodeErrors.Load(),
		}
		for _, lc := range l.snapshotChunks() {
			st.Chunks++
			st.ChunkRows += int64(lc.chunk.Rows())
			if w := lc.chunk.Watermark(); st.Watermark == 0 || w < st.Watermark {
				st.Watermark = w
			}
		}
		if maxRID, err := s.db.TableMaxRID(tid); err == nil && maxRID > st.CoveredRID {
			st.DeltaRows = int64(maxRID - st.CoveredRID)
		}
		if st.Watermark > 0 && cur > st.Watermark {
			st.Lag = cur - st.Watermark
		}
		out = append(out, st)
	}
	return out
}
