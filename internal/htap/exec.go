package htap

// Vectorized aggregate execution over the column lane. One aggregate runs
// under one registered statement snapshot and stitches three sources into a
// single consistent answer:
//
//   - chunk vectors: present, clean slots of every chunk whose watermark is
//     at or below the snapshot — served straight from the int vectors /
//     dictionary codes, no row decoding;
//   - dirty rows and row ranges the chunks do not speak for (slots above a
//     chunk's builtThrough, chunks younger than the snapshot): ordinary
//     MVCC row reads at the snapshot;
//   - the delta tail beyond coveredHi: row reads.
//
// Chunk rows are correct for every registered snapshot TS >= watermark W
// because only settled rows enter a chunk: a settled image was written by a
// commit below the GC horizon at build time, and the horizon is <= every
// registered snapshot's timestamp — so the image is exactly what any such
// snapshot would read, and any later write re-routed the row through the
// dirty set before the scan's snapshot was acquired.

import (
	"fmt"
	"sort"

	"hybridgc/internal/colstore"
	"hybridgc/internal/ts"
	"hybridgc/internal/txn"
)

// AggOp is an aggregate operator.
type AggOp uint8

const (
	AggCount AggOp = iota
	AggSum
	AggMin
	AggMax
)

func (op AggOp) String() string {
	switch op {
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	}
	return fmt.Sprintf("AggOp(%d)", uint8(op))
}

// AggSpec names one aggregate: an operator, its argument column (empty for
// COUNT, which counts rows), and an optional GROUP BY column.
type AggSpec struct {
	Op      AggOp
	Col     string
	GroupBy string
}

// Group is one output group: the key (zero Value for a scalar aggregate)
// plus all four accumulators, kept separately so per-shard partials merge
// associatively.
type Group struct {
	Key   colstore.Value
	Count int64
	Sum   int64
	Min   int64
	Max   int64
}

// Result extracts the operator's answer from the accumulators.
func (g Group) Result(op AggOp) int64 {
	switch op {
	case AggSum:
		return g.Sum
	case AggMin:
		return g.Min
	case AggMax:
		return g.Max
	default:
		return g.Count
	}
}

// AggResult is one aggregate's outcome. ChunkRows/RowRows count how many
// rows were served from column vectors versus MVCC row reads — the lane's
// effectiveness measure, surfaced by tests, stats, and the benchmark.
type AggResult struct {
	Op        AggOp
	Grouped   bool
	Groups    []Group
	ChunkRows int64
	RowRows   int64
}

// Merge folds another partial (for example, one shard's) into r. All four
// accumulators are associative, so merge order does not matter.
func (r *AggResult) Merge(o *AggResult) {
	if o == nil {
		return
	}
	r.ChunkRows += o.ChunkRows
	r.RowRows += o.RowRows
	idx := make(map[colstore.Value]int, len(r.Groups))
	for i, g := range r.Groups {
		idx[g.Key] = i
	}
	for _, og := range o.Groups {
		if og.Count == 0 && !r.Grouped {
			continue
		}
		i, ok := idx[og.Key]
		if !ok {
			idx[og.Key] = len(r.Groups)
			r.Groups = append(r.Groups, og)
			continue
		}
		g := &r.Groups[i]
		if og.Count == 0 {
			continue
		}
		if g.Count == 0 {
			g.Min, g.Max = og.Min, og.Max
		} else {
			if og.Min < g.Min {
				g.Min = og.Min
			}
			if og.Max > g.Max {
				g.Max = og.Max
			}
		}
		g.Count += og.Count
		g.Sum += og.Sum
	}
	r.sortGroups()
}

func (r *AggResult) sortGroups() {
	sort.Slice(r.Groups, func(i, j int) bool {
		a, b := r.Groups[i].Key, r.Groups[j].Key
		if a.S != b.S {
			return a.S < b.S
		}
		return a.I < b.I
	})
}

// plan is a compiled AggSpec: names resolved to column indexes.
type plan struct {
	op       AggOp
	colIdx   int // -1: COUNT without argument
	groupIdx int // -1: scalar
	groupStr bool
}

func compile(schema colstore.Schema, spec AggSpec) (plan, error) {
	p := plan{op: spec.Op, colIdx: -1, groupIdx: -1}
	find := func(name string) (int, error) {
		for i, n := range schema.Names {
			if n == name {
				return i, nil
			}
		}
		return -1, fmt.Errorf("htap: no column %q in schema %q", name, schema.Spec())
	}
	if spec.Col != "" {
		i, err := find(spec.Col)
		if err != nil {
			return p, err
		}
		if spec.Op != AggCount && schema.Types[i] != colstore.Int64 {
			return p, fmt.Errorf("htap: %s requires an int column, %q is a string", spec.Op, spec.Col)
		}
		p.colIdx = i
	} else if spec.Op != AggCount {
		return p, fmt.Errorf("htap: %s requires an argument column", spec.Op)
	}
	if spec.GroupBy != "" {
		i, err := find(spec.GroupBy)
		if err != nil {
			return p, err
		}
		p.groupIdx = i
		p.groupStr = schema.Types[i] == colstore.String
	}
	return p, nil
}

// cell accumulates one group.
type cell struct {
	count int64
	sum   int64
	min   int64
	max   int64
}

func (c *cell) add(v int64) {
	if c.count == 0 {
		c.min, c.max = v, v
	} else {
		if v < c.min {
			c.min = v
		}
		if v > c.max {
			c.max = v
		}
	}
	c.count++
	c.sum += v
}

// acc is one aggregate's accumulator state.
type acc struct {
	p      plan
	scalar cell
	cells  map[colstore.Value]*cell
	order  []colstore.Value
}

func newAcc(p plan) *acc {
	a := &acc{p: p}
	if p.groupIdx >= 0 {
		a.cells = make(map[colstore.Value]*cell)
	}
	return a
}

func (a *acc) cellFor(key colstore.Value) *cell {
	c := a.cells[key]
	if c == nil {
		c = &cell{}
		a.cells[key] = c
		a.order = append(a.order, key)
	}
	return c
}

// addRow accumulates one decoded row.
func (a *acc) addRow(row colstore.Row) {
	c := &a.scalar
	if a.p.groupIdx >= 0 {
		key := row[a.p.groupIdx]
		if a.p.groupStr {
			key = colstore.StrV(key.S)
		} else {
			key = colstore.IntV(key.I)
		}
		c = a.cellFor(key)
	}
	var v int64
	if a.p.colIdx >= 0 {
		v = row[a.p.colIdx].I
	}
	c.add(v)
}

// scanChunk aggregates slots [firstSlot, lastSlot] of one chunk from its
// vectors. Column slices and (for a string GROUP BY) a code→cell cache are
// hoisted out of the loop, so the hot path is array indexing plus one
// branch on the dirty set. Dirty rows are routed through rowFn; the return
// value is the number of rows served from vectors.
func (a *acc) scanChunk(ch *colstore.Chunk, firstSlot, lastSlot int, dirty map[ts.RID]struct{}, rowFn func(ts.RID)) int64 {
	base := ch.BaseRID()
	var vals []int64
	if a.p.colIdx >= 0 {
		vals = ch.Int64s(a.p.colIdx)
	}
	var gInts []int64
	var gCodes []uint32
	var dictCells []*cell
	if a.p.groupIdx >= 0 {
		if a.p.groupStr {
			var dict []string
			gCodes, dict = ch.Strings(a.p.groupIdx)
			dictCells = make([]*cell, len(dict))
			for code := range dict {
				dictCells[code] = a.cellFor(colstore.StrV(dict[code]))
			}
		} else {
			gInts = ch.Int64s(a.p.groupIdx)
		}
	}
	served := int64(0)
	for slot := firstSlot; slot <= lastSlot; slot++ {
		if dirty != nil {
			if _, d := dirty[base+ts.RID(slot)]; d {
				rowFn(base + ts.RID(slot))
				continue
			}
		}
		if !ch.Present(slot) {
			continue
		}
		var c *cell
		switch {
		case a.p.groupIdx < 0:
			c = &a.scalar
		case a.p.groupStr:
			c = dictCells[gCodes[slot]]
		default:
			c = a.cellFor(colstore.IntV(gInts[slot]))
		}
		var v int64
		if vals != nil {
			v = vals[slot]
		}
		c.add(v)
		served++
	}
	return served
}

// groups renders the accumulator into output groups. A scalar aggregate
// always yields exactly one group (COUNT of an empty table is 0); a GROUP
// BY yields one group per key seen, and drops pre-registered dictionary
// keys no row actually used.
func (a *acc) groups() []Group {
	if a.p.groupIdx < 0 {
		s := a.scalar
		return []Group{{Count: s.count, Sum: s.sum, Min: s.min, Max: s.max}}
	}
	out := make([]Group, 0, len(a.order))
	for _, key := range a.order {
		c := a.cells[key]
		if c.count == 0 {
			continue
		}
		out = append(out, Group{Key: key, Count: c.count, Sum: c.sum, Min: c.min, Max: c.max})
	}
	return out
}

// Aggregate runs one aggregate over the table's column lane under a fresh
// registered statement snapshot.
func (s *Store) Aggregate(tid ts.TableID, spec AggSpec) (*AggResult, error) {
	l := s.lane(tid)
	if l == nil {
		return nil, fmt.Errorf("%w (table %d)", ErrNoLane, tid)
	}
	p, err := compile(l.schema, spec)
	if err != nil {
		return nil, err
	}
	// The snapshot stays registered for the whole scan: it pins the GC
	// horizon so the row-read fallbacks observe a stable version space.
	snap := s.db.Manager().AcquireSnapshot(txn.KindStatement, []ts.TableID{tid})
	defer snap.Release()
	return s.aggregateAt(l, p, spec.Op, snap.TS())
}

// aggregateAt runs the scan at an explicit snapshot timestamp. The caller
// must protect at (hold a registered snapshot at or below it).
func (s *Store) aggregateAt(l *Lane, p plan, op AggOp, at ts.CID) (*AggResult, error) {
	tid := l.tid
	maxRID, err := s.db.TableMaxRID(tid)
	if err != nil {
		return nil, err
	}
	// Copy the dirty set BEFORE the chunk list. The migrator clears dirty
	// flags only after swapping in rebuilt chunks, so this order guarantees
	// a scan never pairs old chunks with a shrunken dirty set: either the
	// row is still flagged here (row path, always correct), or the clear —
	// and therefore the swap — happened before the chunk copy below.
	dirty := l.dirtySnapshot()
	chunks := l.snapshotChunks()
	covered := ts.RID(l.coveredHi.Load())

	a := newAcc(p)
	res := &AggResult{Op: op, Grouped: p.groupIdx >= 0}
	var decodeErr error
	rowOne := func(rid ts.RID) {
		img, ok := s.db.ReadAt(tid, rid, at)
		if !ok {
			return
		}
		row, err := colstore.DecodeRow(l.schema, img)
		if err != nil {
			if decodeErr == nil {
				decodeErr = fmt.Errorf("htap: row %d does not match lane schema %q: %w", rid, l.schema.Spec(), err)
			}
			return
		}
		a.addRow(row)
		res.RowRows++
	}
	rowRange := func(lo, hi ts.RID) {
		for rid := lo; rid <= hi; rid++ {
			rowOne(rid)
		}
	}

	pos := ts.RID(1)
	for _, lc := range chunks {
		ch := lc.chunk
		base := ch.BaseRID()
		hi := lc.builtThrough
		if hi > covered {
			hi = covered
		}
		if base > pos {
			rowRange(pos, base-1)
			pos = base
		}
		if pos > hi {
			continue
		}
		if at < ch.Watermark() {
			// The snapshot predates the chunk: its contents may include
			// commits the snapshot must not see. Row-read the whole range.
			rowRange(pos, hi)
		} else {
			res.ChunkRows += a.scanChunk(ch, int(pos-base), int(hi-base), dirty, rowOne)
		}
		pos = hi + 1
	}
	if pos <= maxRID {
		// The delta tail: rows never migrated.
		rowRange(pos, maxRID)
	}
	if decodeErr != nil {
		return nil, decodeErr
	}
	res.Groups = a.groups()
	res.sortGroups()
	return res, nil
}
