package htap

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"hybridgc/internal/colstore"
	"hybridgc/internal/core"
	"hybridgc/internal/engine"
	"hybridgc/internal/shard"
	"hybridgc/internal/ts"
	"hybridgc/internal/txn"
)

var laneSchema = colstore.Schema{
	Names: []string{"amount", "region"},
	Types: []colstore.ColumnType{colstore.Int64, colstore.String},
}

func openTest(t *testing.T, cfg core.Config) *core.DB {
	t.Helper()
	cfg.Txn.SynchronousPropagation = true
	db, err := core.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Close)
	return db
}

func enc(t testing.TB, amount int64, region string) []byte {
	t.Helper()
	img, err := colstore.EncodeRow(laneSchema, colstore.Row{colstore.IntV(amount), colstore.StrV(region)})
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func insertRow(t testing.TB, db *core.DB, tid ts.TableID, amount int64, region string) ts.RID {
	t.Helper()
	var rid ts.RID
	if err := db.Exec(txn.StmtSI, nil, func(tx *core.Tx) error {
		var err error
		rid, err = tx.Insert(tid, enc(t, amount, region))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	return rid
}

func updateRow(t testing.TB, db *core.DB, tid ts.TableID, rid ts.RID, amount int64, region string) {
	t.Helper()
	if err := db.Exec(txn.StmtSI, nil, func(tx *core.Tx) error {
		return tx.Update(tid, rid, enc(t, amount, region))
	}); err != nil {
		t.Fatal(err)
	}
}

func newTestStore(t *testing.T, db *core.DB) *Store {
	t.Helper()
	st, err := NewStore(db, Config{ChunkSlots: 8})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func scalar(t *testing.T, st *Store, tid ts.TableID, spec AggSpec) (int64, *AggResult) {
	t.Helper()
	res, err := st.Aggregate(tid, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 1 {
		t.Fatalf("%v: %d groups, want 1", spec, len(res.Groups))
	}
	return res.Groups[0].Result(spec.Op), res
}

// TestMigrateAndAggregate is the basic lane lifecycle: settled rows migrate
// into chunks, aggregates come from vectors, and the un-migrated delta tail
// is stitched in through row reads.
func TestMigrateAndAggregate(t *testing.T) {
	db := openTest(t, core.Config{})
	tid, err := db.CreateTable("FACTS")
	if err != nil {
		t.Fatal(err)
	}
	st := newTestStore(t, db)
	if err := st.EnableTable(tid, laneSchema); err != nil {
		t.Fatal(err)
	}

	regions := []string{"emea", "apj", "amer"}
	const n = 40
	var wantSum int64
	for i := 0; i < n; i++ {
		insertRow(t, db, tid, int64(i+1), regions[i%3])
		wantSum += int64(i + 1)
	}
	db.GC().Collect()
	if got := st.Migrate(); got != n {
		t.Fatalf("Migrate moved %d rows, want %d", got, n)
	}

	if sum, res := scalar(t, st, tid, AggSpec{Op: AggSum, Col: "amount"}); sum != wantSum {
		t.Fatalf("SUM = %d, want %d", sum, wantSum)
	} else if res.RowRows != 0 || res.ChunkRows != n {
		t.Fatalf("SUM served chunk=%d row=%d, want %d/0", res.ChunkRows, res.RowRows, n)
	}
	if cnt, _ := scalar(t, st, tid, AggSpec{Op: AggCount}); cnt != n {
		t.Fatalf("COUNT = %d, want %d", cnt, n)
	}
	if mn, _ := scalar(t, st, tid, AggSpec{Op: AggMin, Col: "amount"}); mn != 1 {
		t.Fatalf("MIN = %d, want 1", mn)
	}
	if mx, _ := scalar(t, st, tid, AggSpec{Op: AggMax, Col: "amount"}); mx != n {
		t.Fatalf("MAX = %d, want %d", mx, n)
	}

	// GROUP BY over the dictionary column.
	res, err := st.Aggregate(tid, AggSpec{Op: AggSum, Col: "amount", GroupBy: "region"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 3 {
		t.Fatalf("%d groups, want 3", len(res.Groups))
	}
	var groupTotal int64
	for _, g := range res.Groups {
		groupTotal += g.Sum
	}
	if groupTotal != wantSum {
		t.Fatalf("grouped sums total %d, want %d", groupTotal, wantSum)
	}

	// Delta tail: fresh inserts are visible before any migration pass.
	insertRow(t, db, tid, 1000, "emea")
	sum, sres := scalar(t, st, tid, AggSpec{Op: AggSum, Col: "amount"})
	if sum != wantSum+1000 {
		t.Fatalf("SUM with delta = %d, want %d", sum, wantSum+1000)
	}
	if sres.RowRows == 0 {
		t.Fatal("delta row was not served through the row path")
	}

	// An update dirties its chunk slot; the aggregate must reflect it
	// immediately (row fallback), then return to the vectors after
	// settle+migrate.
	updateRow(t, db, tid, 1, 501, regions[0]) // amount 1 -> 501
	wantSum += 500
	if sum, _ := scalar(t, st, tid, AggSpec{Op: AggSum, Col: "amount"}); sum != wantSum+1000 {
		t.Fatalf("SUM after update = %d, want %d", sum, wantSum+1000)
	}
	db.GC().Collect()
	st.Migrate()
	sum, sres = scalar(t, st, tid, AggSpec{Op: AggSum, Col: "amount"})
	if sum != wantSum+1000 {
		t.Fatalf("SUM after re-migrate = %d, want %d", sum, wantSum+1000)
	}
	if sres.RowRows != 0 {
		t.Fatalf("%d rows still on the row path after re-migrate", sres.RowRows)
	}
	stats := st.Stats()
	if len(stats) != 1 || stats[0].Chunks == 0 || stats[0].MigratedRows < n {
		t.Fatalf("unexpected lane stats: %+v", stats)
	}
}

// TestAggregateConsistencyUnderChurn hammers the lane with concurrent
// balance-preserving transfers while the migrator and garbage collector
// run; every aggregate must observe the invariant total.
func TestAggregateConsistencyUnderChurn(t *testing.T) {
	db := openTest(t, core.Config{})
	tid, err := db.CreateTable("ACCTS")
	if err != nil {
		t.Fatal(err)
	}
	st := newTestStore(t, db)
	if err := st.EnableTable(tid, laneSchema); err != nil {
		t.Fatal(err)
	}

	const n = 64
	const each = 100
	rids := make([]ts.RID, n)
	for i := range rids {
		rids[i] = insertRow(t, db, tid, each, fmt.Sprintf("r%d", i%4))
	}
	db.GC().Collect()
	st.Migrate()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Transfer workers: each transaction moves 1 between two rows, keeping
	// the total constant.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				a, b := rids[(w*16+i)%n], rids[(w*16+i*7+1)%n]
				if a == b {
					continue
				}
				// Trans-SI: the whole transfer runs against one snapshot
				// with first-committer-wins, so a conflicting transfer
				// aborts instead of applying a lost update — the invariant
				// the scan checks depends on it.
				db.Exec(txn.TransSI, []ts.TableID{tid}, func(tx *core.Tx) error {
					ra, err := tx.Get(tid, a)
					if err != nil {
						return err
					}
					rb, err := tx.Get(tid, b)
					if err != nil {
						return err
					}
					rowA, err := colstore.DecodeRow(laneSchema, ra)
					if err != nil {
						return err
					}
					rowB, err := colstore.DecodeRow(laneSchema, rb)
					if err != nil {
						return err
					}
					imgA, _ := colstore.EncodeRow(laneSchema, colstore.Row{colstore.IntV(rowA[0].I - 1), rowA[1]})
					imgB, _ := colstore.EncodeRow(laneSchema, colstore.Row{colstore.IntV(rowB[0].I + 1), rowB[1]})
					if err := tx.Update(tid, a, imgA); err != nil {
						return err
					}
					return tx.Update(tid, b, imgB)
				})
			}
		}(w)
	}
	// Background settle + migrate churn.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				db.GC().Collect()
				st.Migrate()
			}
		}
	}()

	deadline := time.Now().Add(500 * time.Millisecond)
	checks := 0
	for time.Now().Before(deadline) {
		if sum, _ := scalar(t, st, tid, AggSpec{Op: AggSum, Col: "amount"}); sum != n*each {
			close(stop)
			wg.Wait()
			t.Fatalf("SUM = %d under churn, want %d (check %d)", sum, n*each, checks)
		}
		if cnt, _ := scalar(t, st, tid, AggSpec{Op: AggCount}); cnt != n {
			close(stop)
			wg.Wait()
			t.Fatalf("COUNT = %d under churn, want %d", cnt, n)
		}
		checks++
	}
	close(stop)
	wg.Wait()
	if checks == 0 {
		t.Fatal("no consistency checks ran")
	}
}

// TestPinnedCursorBlocksMigration is the guard's positive direction: a
// registered cursor snapshot pins the table horizon, the chains above it
// cannot settle, and the migrator must leave those rows on the row path —
// where the cursor's timestamp still resolves the old versions.
func TestPinnedCursorBlocksMigration(t *testing.T) {
	db := openTest(t, core.Config{})
	tid, err := db.CreateTable("FACTS")
	if err != nil {
		t.Fatal(err)
	}
	st := newTestStore(t, db)
	if err := st.EnableTable(tid, laneSchema); err != nil {
		t.Fatal(err)
	}

	const n = 16
	rids := make([]ts.RID, n)
	for i := range rids {
		rids[i] = insertRow(t, db, tid, 10, "old")
	}
	db.GC().Collect()
	st.Migrate()

	// Pin the table at the pre-update state.
	cursor := db.Manager().AcquireSnapshot(txn.KindCursor, []ts.TableID{tid})
	pinnedTS := cursor.TS()

	for _, rid := range rids {
		updateRow(t, db, tid, rid, 20, "new")
	}
	db.GC().Collect() // must NOT settle: the cursor pins the horizon
	migrated := st.Migrate()
	if migrated != 0 {
		t.Fatalf("migrator moved %d rows whose versions a pinned snapshot still needs", migrated)
	}
	stats := st.Stats()[0]
	if stats.DirtyRows != n {
		t.Fatalf("DirtyRows = %d, want %d (blocked rows must stay on the row path)", stats.DirtyRows, n)
	}

	// The pinned cursor still reads the old world through the row path...
	l := st.lane(tid)
	p, err := compile(laneSchema, AggSpec{Op: AggSum, Col: "amount"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.aggregateAt(l, p, AggSum, pinnedTS)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Groups[0].Sum; got != n*10 {
		t.Fatalf("pinned-TS SUM = %d, want %d (old versions must remain reachable)", got, n*10)
	}
	// ...while a fresh scan sees the new values.
	if sum, _ := scalar(t, st, tid, AggSpec{Op: AggSum, Col: "amount"}); sum != n*20 {
		t.Fatalf("fresh SUM = %d, want %d", sum, n*20)
	}

	// Release the pin: GC settles, the next pass migrates, the lane drains.
	cursor.Release()
	db.GC().Collect()
	if got := st.Migrate(); got != n {
		t.Fatalf("post-release Migrate moved %d rows, want %d", got, n)
	}
	stats = st.Stats()[0]
	if stats.DirtyRows != 0 {
		t.Fatalf("DirtyRows = %d after release, want 0", stats.DirtyRows)
	}
	sum, res2 := scalar(t, st, tid, AggSpec{Op: AggSum, Col: "amount"})
	if sum != n*20 || res2.RowRows != 0 {
		t.Fatalf("settled SUM = %d (row rows %d), want %d served fully from chunks", sum, res2.RowRows, n*20)
	}
}

// TestVisibilityGuardRegression is the red test: with the guard reverted
// (guardOff), the migrator copies a still-chained row's table-space image
// into a chunk — and a scan after the in-flight transaction commits reads a
// stale aggregate from the vectors. The guard exists precisely to make the
// second half of this test impossible.
func TestVisibilityGuardRegression(t *testing.T) {
	run := func(t *testing.T, guardOff bool) int64 {
		db := openTest(t, core.Config{})
		tid, err := db.CreateTable("FACTS")
		if err != nil {
			t.Fatal(err)
		}
		st := newTestStore(t, db)
		if err := st.EnableTable(tid, laneSchema); err != nil {
			t.Fatal(err)
		}
		rid := insertRow(t, db, tid, 10, "x")
		db.GC().Collect()
		st.Migrate()

		// An in-flight transaction rewrites the row (the new version is
		// prepended immediately; commit only stamps it later).
		tx := db.Begin(txn.StmtSI)
		if err := tx.Update(tid, rid, enc(t, 20, "x")); err != nil {
			t.Fatal(err)
		}
		st.guardOff.Store(guardOff)
		st.Migrate() // the update dirtied the row, forcing a rebuild
		st.guardOff.Store(false)
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}

		sum, _ := scalar(t, st, tid, AggSpec{Op: AggSum, Col: "amount"})
		return sum
	}

	t.Run("guard-reverted", func(t *testing.T) {
		if sum := run(t, true); sum != 10 {
			t.Fatalf("SUM = %d; the reverted guard was expected to expose the stale chunk value 10 — "+
				"if this now reads 20, the red test lost its teeth", sum)
		}
	})
	t.Run("guard-on", func(t *testing.T) {
		if sum := run(t, false); sum != 20 {
			t.Fatalf("SUM = %d, want 20 (guard must keep the still-chained row on the row path)", sum)
		}
	})
}

// TestRecoveryReEnablesLanes checks the lane's single durability artifact:
// the wal.KindHTAPLane record (re-logged by checkpoints) brings the lane
// back after a restart, and the migrator rebuilds chunks from the recovered
// table state.
func TestRecoveryReEnablesLanes(t *testing.T) {
	dir := t.TempDir()
	open := func() *core.DB {
		return openTest(t, core.Config{Persistence: &core.Persistence{Dir: dir}})
	}

	db := open()
	tid, err := db.CreateTable("FACTS")
	if err != nil {
		t.Fatal(err)
	}
	st := newTestStore(t, db)
	if err := st.EnableTable(tid, laneSchema); err != nil {
		t.Fatal(err)
	}
	var wantSum int64
	for i := 1; i <= 20; i++ {
		insertRow(t, db, tid, int64(i), "r")
		wantSum += int64(i)
	}
	if err := db.Checkpoint(); err != nil { // checkpoint must re-log the lane record
		t.Fatal(err)
	}
	insertRow(t, db, tid, 1000, "r")
	wantSum += 1000
	db.Close()

	db2 := open()
	st2, err := NewStore(db2, Config{ChunkSlots: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Enabled(db2.TableID("FACTS")) {
		t.Fatal("lane not re-enabled after recovery")
	}
	tid2 := db2.TableID("FACTS")
	db2.GC().Collect()
	if got := st2.Migrate(); got != 21 {
		t.Fatalf("post-recovery Migrate moved %d rows, want 21", got)
	}
	sum, res := scalar(t, st2, tid2, AggSpec{Op: AggSum, Col: "amount"})
	if sum != wantSum {
		t.Fatalf("post-recovery SUM = %d, want %d", sum, wantSum)
	}
	if res.ChunkRows != 21 {
		t.Fatalf("post-recovery chunk rows = %d, want 21", res.ChunkRows)
	}
}

// TestManagerShardedAggregate runs the lane across a sharded engine:
// per-shard migrators, cross-shard merge, and the pinned-snapshot guard on
// one shard while the others keep migrating.
func TestManagerShardedAggregate(t *testing.T) {
	eng, err := shard.Open(shard.Config{
		Shards: 3,
		Configure: func(int) core.Config {
			return core.Config{Txn: txn.Config{SynchronousPropagation: true}}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	tid, err := eng.CreateTable("FACTS")
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.SetPlacement(tid, engine.Placement{Kind: engine.PlaceInterleave}); err != nil {
		t.Fatal(err)
	}
	m, err := NewManager(eng, Config{ChunkSlots: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.EnableTable(tid, laneSchema); err != nil {
		t.Fatal(err)
	}

	regions := []string{"emea", "apj"}
	const n = 48
	var wantSum int64
	for i := 0; i < n; i++ {
		img, _ := colstore.EncodeRow(laneSchema, colstore.Row{colstore.IntV(int64(i + 1)), colstore.StrV(regions[i%2])})
		if err := eng.Exec(txn.StmtSI, nil, func(tx engine.Tx) error {
			_, err := tx.InsertAt(tid, img, i)
			return err
		}); err != nil {
			t.Fatal(err)
		}
		wantSum += int64(i + 1)
	}
	for i := 0; i < eng.Shards(); i++ {
		eng.Shard(i).GC().Collect()
	}
	if got := m.Migrate(); got != n {
		t.Fatalf("Migrate moved %d rows across shards, want %d", got, n)
	}

	res, err := m.Aggregate(tid, AggSpec{Op: AggSum, Col: "amount"})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Groups[0].Sum; got != wantSum {
		t.Fatalf("sharded SUM = %d, want %d", got, wantSum)
	}
	if res.RowRows != 0 {
		t.Fatalf("%d rows on the row path after full migration", res.RowRows)
	}
	grouped, err := m.Aggregate(tid, AggSpec{Op: AggSum, Col: "amount", GroupBy: "region"})
	if err != nil {
		t.Fatal(err)
	}
	if len(grouped.Groups) != 2 {
		t.Fatalf("%d merged groups, want 2", len(grouped.Groups))
	}
	var total int64
	for _, g := range grouped.Groups {
		total += g.Sum
	}
	if total != wantSum {
		t.Fatalf("merged group total = %d, want %d", total, wantSum)
	}

	// Sharded guard leg: pin shard 0 with a cursor, update every row; shard
	// 0's updated rows must stay un-migrated while other shards settle, and
	// the merged aggregate stays correct throughout.
	sh0 := eng.Shard(0)
	cursor := sh0.Manager().AcquireSnapshot(txn.KindCursor, []ts.TableID{tid})
	for i := 0; i < eng.Shards(); i++ {
		sh := eng.Shard(i)
		maxRID, err := sh.TableMaxRID(tid)
		if err != nil {
			t.Fatal(err)
		}
		for rid := ts.RID(1); rid <= maxRID; rid++ {
			img, ok := sh.ReadAt(tid, rid, sh.Manager().CurrentTS())
			if !ok {
				continue
			}
			row, err := colstore.DecodeRow(laneSchema, img)
			if err != nil {
				t.Fatal(err)
			}
			img2, _ := colstore.EncodeRow(laneSchema, colstore.Row{colstore.IntV(row[0].I + 1000), row[1]})
			if err := sh.Exec(txn.StmtSI, nil, func(tx *core.Tx) error {
				return tx.Update(tid, rid, img2)
			}); err != nil {
				t.Fatal(err)
			}
			wantSum += 1000
		}
	}
	for i := 0; i < eng.Shards(); i++ {
		eng.Shard(i).GC().Collect()
	}
	m.Migrate()
	if st := m.Store(0).Stats(); len(st) == 0 || st[0].DirtyRows == 0 {
		t.Fatalf("shard 0's pinned rows were migrated: %+v", st)
	}
	res, err = m.Aggregate(tid, AggSpec{Op: AggSum, Col: "amount"})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Groups[0].Sum; got != wantSum {
		t.Fatalf("sharded SUM with pinned shard = %d, want %d", got, wantSum)
	}
	if res.RowRows == 0 {
		t.Fatal("pinned shard rows must be served through the row path")
	}
	cursor.Release()
}

// TestBackgroundMigrator checks the Start/Stop loop migrates without manual
// passes.
func TestBackgroundMigrator(t *testing.T) {
	db := openTest(t, core.Config{})
	tid, err := db.CreateTable("FACTS")
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewStore(db, Config{ChunkSlots: 8, Interval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.EnableTable(tid, laneSchema); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		insertRow(t, db, tid, 1, "r")
	}
	db.GC().Collect()
	st.Start()
	defer st.Stop()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if s := st.Stats(); len(s) == 1 && s[0].MigratedRows >= 16 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("background migrator made no progress: %+v", st.Stats())
}
