package htap

// Manager runs the column lane over a whole engine: one Store per shard,
// each with its own background migrator (per-shard migrators are
// independent — a slow shard's lane lags without stalling the others), and
// a fan-out aggregate that merges per-shard partials. All four accumulators
// (COUNT/SUM/MIN/MAX, grouped or not) are associative, so the cross-shard
// merge is exact.

import (
	"sync"

	"hybridgc/internal/colstore"
	"hybridgc/internal/engine"
	"hybridgc/internal/ts"
)

// Manager is the engine-level lane front end.
type Manager struct {
	eng    engine.Engine
	stores []*Store
}

// NewManager builds one Store per shard (re-enabling any lanes the shards
// recovered from their logs). The background migrators start with Start.
func NewManager(eng engine.Engine, cfg Config) (*Manager, error) {
	m := &Manager{eng: eng}
	for i := 0; i < eng.Shards(); i++ {
		st, err := NewStore(eng.Shard(i), cfg)
		if err != nil {
			for _, prev := range m.stores {
				prev.Stop()
			}
			return nil, err
		}
		m.stores = append(m.stores, st)
	}
	return m, nil
}

// Start launches every shard's background migrator; Stop halts them.
func (m *Manager) Start() {
	for _, st := range m.stores {
		st.Start()
	}
}

// Stop halts all background migrators and waits for in-flight passes.
func (m *Manager) Stop() {
	for _, st := range m.stores {
		st.Stop()
	}
}

// Shards returns the number of per-shard stores.
func (m *Manager) Shards() int { return len(m.stores) }

// Store returns shard i's lane store.
func (m *Manager) Store(i int) *Store { return m.stores[i] }

// EnableTable enables the lane for a table on every shard.
func (m *Manager) EnableTable(tid ts.TableID, schema colstore.Schema) error {
	for _, st := range m.stores {
		if err := st.EnableTable(tid, schema); err != nil {
			return err
		}
	}
	return nil
}

// Enabled reports whether the table has a lane (on shard 0 — EnableTable
// is all-shards, so the shards agree).
func (m *Manager) Enabled(tid ts.TableID) bool {
	return len(m.stores) > 0 && m.stores[0].Enabled(tid)
}

// Schema returns the lane schema for a table, if enabled.
func (m *Manager) Schema(tid ts.TableID) (colstore.Schema, bool) {
	if len(m.stores) == 0 {
		return colstore.Schema{}, false
	}
	l := m.stores[0].lane(tid)
	if l == nil {
		return colstore.Schema{}, false
	}
	return l.schema, true
}

// Migrate runs one synchronous migration pass on every shard, returning
// rows migrated (tests and examples; production uses the background loop).
func (m *Manager) Migrate() int {
	total := 0
	for _, st := range m.stores {
		total += st.Migrate()
	}
	return total
}

// Aggregate fans the aggregate out to every shard concurrently and merges
// the partials.
func (m *Manager) Aggregate(tid ts.TableID, spec AggSpec) (*AggResult, error) {
	if len(m.stores) == 1 {
		return m.stores[0].Aggregate(tid, spec)
	}
	results := make([]*AggResult, len(m.stores))
	errs := make([]error, len(m.stores))
	var wg sync.WaitGroup
	for i, st := range m.stores {
		wg.Add(1)
		go func(i int, st *Store) {
			defer wg.Done()
			results[i], errs[i] = st.Aggregate(tid, spec)
		}(i, st)
	}
	wg.Wait()
	var out *AggResult
	for i, r := range results {
		if errs[i] != nil {
			return nil, errs[i]
		}
		if out == nil {
			out = r
		} else {
			out.Merge(r)
		}
	}
	return out, nil
}

// TableStats is one table's lane state summed across shards.
type TableStats struct {
	Table ts.TableID
	Name  string
	LaneStats
}

// Stats sums per-lane statistics across shards, keyed by table. Watermark
// is the minimum (the lane is only as settled as its most-lagging shard);
// Lag likewise is the maximum.
func (m *Manager) Stats() []TableStats {
	byTable := map[ts.TableID]*TableStats{}
	var order []ts.TableID
	for _, st := range m.stores {
		for _, ls := range st.Stats() {
			t := byTable[ls.Table]
			if t == nil {
				t = &TableStats{Table: ls.Table, LaneStats: ls}
				byTable[ls.Table] = t
				order = append(order, ls.Table)
				continue
			}
			t.Chunks += ls.Chunks
			t.ChunkRows += ls.ChunkRows
			t.CoveredRID += ls.CoveredRID
			t.DeltaRows += ls.DeltaRows
			t.DirtyRows += ls.DirtyRows
			t.MigratedRows += ls.MigratedRows
			t.Rebuilds += ls.Rebuilds
			t.Passes += ls.Passes
			t.DictOverflows += ls.DictOverflows
			t.DecodeErrors += ls.DecodeErrors
			if ls.Watermark > 0 && (t.Watermark == 0 || ls.Watermark < t.Watermark) {
				t.Watermark = ls.Watermark
			}
			if ls.Lag > t.Lag {
				t.Lag = ls.Lag
			}
		}
	}
	names := map[ts.TableID]string{}
	for _, name := range m.eng.Tables() {
		names[m.eng.TableID(name)] = name
	}
	out := make([]TableStats, 0, len(order))
	for _, tid := range order {
		t := byTable[tid]
		t.Name = names[tid]
		out = append(out, *t)
	}
	return out
}
