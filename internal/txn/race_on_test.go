//go:build race

package txn

// raceEnabled gates the zero-alloc pins: the race detector instruments
// sync.Pool and escape paths with allocations of its own, so steady-state
// counts are meaningless under -race.
const raceEnabled = true
