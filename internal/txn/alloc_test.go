package txn

import (
	"testing"

	"hybridgc/internal/mvcc"
	"hybridgc/internal/sts"
)

// TestBarrierAllocFree pins the commit-request pooling: Barrier exercises the
// full submit/sweep/answer machinery (pooled commitReq + done channel,
// sharded intake, committer sweep buffers) with no transaction state on top,
// so at steady state the whole round trip — including the committer
// goroutine's share — must allocate nothing. Before pooling, every request
// allocated a commitReq and a channel.
func TestBarrierAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	m := NewManager(mvcc.NewSpace(256), sts.NewRegistry(), Config{})
	defer m.Close()
	// Warm the request pool and the intake/committer scratch buffers.
	for i := 0; i < 64; i++ {
		if err := m.Barrier(); err != nil {
			t.Fatal(err)
		}
	}
	// AllocsPerRun reports process-wide mallocs per run, so the committer
	// goroutine's allocations (if any) are counted too.
	if n := testing.AllocsPerRun(200, func() {
		if err := m.Barrier(); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("Barrier allocated %.1f objects/op at steady state, want 0", n)
	}
}
