package txn

import (
	"sync"
	"time"

	"hybridgc/internal/ts"
)

// monitorStripes shards the live-snapshot set so registration does not
// reintroduce a global mutex behind the lock-free acquire path. Snapshots
// pick their stripe from the registry handle's announcement slot, so
// concurrent snapshots naturally land on different stripes.
const monitorStripes = 64

type monitorStripe struct {
	mu   sync.Mutex
	live map[*Snapshot]struct{}
	_    [88]byte
}

// Monitor is the system monitor of §4.3 step 1: it keeps track of every
// active snapshot's status so the table garbage collector can discover
// long-lived snapshots and their table scopes.
type Monitor struct {
	stripes [monitorStripes]monitorStripe
}

func newMonitor() *Monitor {
	mo := &Monitor{}
	for i := range mo.stripes {
		mo.stripes[i].live = make(map[*Snapshot]struct{})
	}
	return mo
}

func (mo *Monitor) add(s *Snapshot) {
	st := &mo.stripes[s.stripe]
	st.mu.Lock()
	st.live[s] = struct{}{}
	st.mu.Unlock()
}

func (mo *Monitor) remove(s *Snapshot) {
	st := &mo.stripes[s.stripe]
	st.mu.Lock()
	delete(st.live, s)
	st.mu.Unlock()
}

// Active returns the currently active snapshots (unordered).
func (mo *Monitor) Active() []*Snapshot {
	var out []*Snapshot
	for i := range mo.stripes {
		st := &mo.stripes[i]
		st.mu.Lock()
		for s := range st.live {
			out = append(out, s)
		}
		st.mu.Unlock()
	}
	return out
}

// ActiveCount returns the number of active snapshots.
func (mo *Monitor) ActiveCount() int {
	n := 0
	for i := range mo.stripes {
		st := &mo.stripes[i]
		st.mu.Lock()
		n += len(st.live)
		st.mu.Unlock()
	}
	return n
}

// LongLived returns snapshots older than threshold whose complete table
// scope is known and that have not yet been moved to per-table trackers —
// the candidates of the table collector's first step.
func (mo *Monitor) LongLived(threshold time.Duration) []*Snapshot {
	var out []*Snapshot
	for _, s := range mo.Active() {
		if s.Age() >= threshold && s.ScopeKnown() && !s.Scoped() && !s.Released() {
			out = append(out, s)
		}
	}
	return out
}

// OldestTS returns the minimum timestamp over active snapshots, or ok=false
// when none are active. Used by monitoring output (the "Active Commit ID
// Range" of Figure 2 is CurrentTS minus this value).
func (mo *Monitor) OldestTS() (ts.CID, bool) {
	min := ts.Infinity
	found := false
	for _, s := range mo.Active() {
		if t := s.TS(); t < min {
			min = t
			found = true
		}
	}
	if !found {
		return 0, false
	}
	return min, true
}
