package txn

import (
	"sync"
	"time"

	"hybridgc/internal/ts"
)

// Monitor is the system monitor of §4.3 step 1: it keeps track of every
// active snapshot's status so the table garbage collector can discover
// long-lived snapshots and their table scopes.
type Monitor struct {
	mu   sync.Mutex
	live map[*Snapshot]struct{}
}

func newMonitor() *Monitor {
	return &Monitor{live: make(map[*Snapshot]struct{})}
}

func (mo *Monitor) add(s *Snapshot) {
	mo.mu.Lock()
	mo.live[s] = struct{}{}
	mo.mu.Unlock()
}

func (mo *Monitor) remove(s *Snapshot) {
	mo.mu.Lock()
	delete(mo.live, s)
	mo.mu.Unlock()
}

// Active returns the currently active snapshots (unordered).
func (mo *Monitor) Active() []*Snapshot {
	mo.mu.Lock()
	defer mo.mu.Unlock()
	out := make([]*Snapshot, 0, len(mo.live))
	for s := range mo.live {
		out = append(out, s)
	}
	return out
}

// ActiveCount returns the number of active snapshots.
func (mo *Monitor) ActiveCount() int {
	mo.mu.Lock()
	defer mo.mu.Unlock()
	return len(mo.live)
}

// LongLived returns snapshots older than threshold whose complete table
// scope is known and that have not yet been moved to per-table trackers —
// the candidates of the table collector's first step.
func (mo *Monitor) LongLived(threshold time.Duration) []*Snapshot {
	var out []*Snapshot
	for _, s := range mo.Active() {
		if s.Age() >= threshold && s.ScopeKnown() && !s.Scoped() && !s.Released() {
			out = append(out, s)
		}
	}
	return out
}

// OldestTS returns the minimum timestamp over active snapshots, or ok=false
// when none are active. Used by monitoring output (the "Active Commit ID
// Range" of Figure 2 is CurrentTS minus this value).
func (mo *Monitor) OldestTS() (ts.CID, bool) {
	min := ts.Infinity
	found := false
	for _, s := range mo.Active() {
		if t := s.TS(); t < min {
			min = t
			found = true
		}
	}
	if !found {
		return 0, false
	}
	return min, true
}
