package txn

import (
	"runtime"
	"sync/atomic"
	"time"

	"hybridgc/internal/sts"
	"hybridgc/internal/ts"
)

// SnapshotKind distinguishes how a snapshot came to exist, which the monitor
// reports and the table collector uses when deciding what can be scoped.
type SnapshotKind int

const (
	// KindStatement is a Stmt-SI statement snapshot.
	KindStatement SnapshotKind = iota
	// KindCursor is a statement snapshot kept open by a client-held cursor —
	// the paper's canonical long-lived garbage collection blocker.
	KindCursor
	// KindTransaction is a Trans-SI transaction snapshot.
	KindTransaction
)

// String implements fmt.Stringer.
func (k SnapshotKind) String() string {
	switch k {
	case KindCursor:
		return "cursor"
	case KindTransaction:
		return "transaction"
	default:
		return "statement"
	}
}

// Snapshot is one active read view. It pins its timestamp in the snapshot
// registry until released; the registry handle is embedded by value so a
// statement snapshot costs one allocation, not two. A snapshot whose table
// scope is known a priori (always under Stmt-SI, where the compiled plan
// names the tables; under Trans-SI only for declared-table transactions) is
// eligible for table GC.
type Snapshot struct {
	m     *Manager
	h     sts.Handle
	kind  SnapshotKind
	scope []ts.TableID
	// parts, when non-nil, narrows the scope below table granularity: the
	// snapshot accesses only these partitions of the (single) scope table —
	// the partition-pruning knowledge §4.3 mentions. The table collector
	// then scopes it to per-partition trackers.
	parts   []ts.PartitionID
	started time.Time
	// stripe is the monitor shard the snapshot registered with (derived from
	// the registry handle's slot, so concurrent snapshots spread naturally).
	stripe uint32

	released atomic.Bool
	killed   atomic.Bool
}

// AcquireSnapshot registers a new snapshot at the current commit timestamp.
// scope lists the tables the snapshot will access when known a priori, or
// nil when unpredictable (plain Trans-SI transactions, §4.3).
func (m *Manager) AcquireSnapshot(kind SnapshotKind, scope []ts.TableID) *Snapshot {
	return m.acquireSnapshot(kind, scope, nil)
}

// acquireSnapshot fully constructs the snapshot — including any partition
// scope — before publishing it to the monitor, where the table collector
// may read it concurrently.
//
// The hot path takes no lock: the timestamp read and the registry publish
// are validated against the GC scan seqlock and retried on interference, so
// SnapshotSetAndBound observes either the registered snapshot or a commit
// timestamp at or below its bound (proof sketch in DESIGN.md §15).
func (m *Manager) acquireSnapshot(kind SnapshotKind, scope []ts.TableID, parts []ts.PartitionID) *Snapshot {
	s := &Snapshot{
		m:       m,
		kind:    kind,
		scope:   append([]ts.TableID(nil), scope...),
		parts:   append([]ts.PartitionID(nil), parts...),
		started: time.Now(),
	}
	for {
		seq := m.scanSeq.Load()
		if seq&1 == 1 {
			// A scan is in progress; publishing now could slip a timestamp
			// below the bound it is about to return.
			runtime.Gosched()
			continue
		}
		cur := m.CurrentTS()
		m.reg.AcquireInto(&s.h, cur)
		if m.scanSeq.Load() == seq {
			break
		}
		// A scan started (and possibly finished) while we published: it may
		// have read its bound after our timestamp read but before our
		// announcement landed. Retract and retry with a fresh timestamp.
		s.h.Release()
	}
	s.stripe = s.h.Hint() % monitorStripes
	m.mon.add(s)
	return s
}

// TS returns the snapshot timestamp: reads see versions with CID <= TS.
func (s *Snapshot) TS() ts.CID { return s.h.TS() }

// Kind returns how the snapshot was created.
func (s *Snapshot) Kind() SnapshotKind { return s.kind }

// Scope returns the declared table scope, or nil when unknown.
func (s *Snapshot) Scope() []ts.TableID { return s.scope }

// ScopeKnown reports whether the complete table set is known a priori.
func (s *Snapshot) ScopeKnown() bool { return len(s.scope) > 0 }

// InScope reports whether the snapshot may access table tid. Snapshots with
// unknown scope may access anything; scoped snapshots are restricted, and
// the engine reports an error on out-of-scope access, mirroring HANA's
// declared-table API ("if the transaction tries to access a non-declared
// table object, an error is reported", §4.3).
func (s *Snapshot) InScope(tid ts.TableID) bool {
	if len(s.scope) == 0 {
		return true
	}
	for _, t := range s.scope {
		if t == tid {
			return true
		}
	}
	return false
}

// AcquireSnapshotPartitions registers a snapshot whose scope is a set of
// partitions of one table — known a priori from the query plan's
// partition-pruning result (§4.3).
func (m *Manager) AcquireSnapshotPartitions(kind SnapshotKind, table ts.TableID, parts []ts.PartitionID) *Snapshot {
	return m.acquireSnapshot(kind, []ts.TableID{table}, parts)
}

// PartitionScope returns the partition-granular scope, when one was
// declared: the scope table and its partitions.
func (s *Snapshot) PartitionScope() (ts.TableID, []ts.PartitionID, bool) {
	if len(s.parts) == 0 || len(s.scope) != 1 {
		return 0, nil, false
	}
	return s.scope[0], s.parts, true
}

// Age returns how long the snapshot has been active.
func (s *Snapshot) Age() time.Duration { return time.Since(s.started) }

// Started returns the acquisition time.
func (s *Snapshot) Started() time.Time { return s.started }

// Handle exposes the registry handle (the table collector moves it between
// trackers).
func (s *Snapshot) Handle() *sts.Handle { return &s.h }

// Scoped reports whether the table collector already moved this snapshot to
// per-table trackers.
func (s *Snapshot) Scoped() bool { return s.h.Scoped() != nil }

// Release ends the snapshot, dropping its tracker references and removing it
// from the monitor. Releasing twice is a harmless no-op.
func (s *Snapshot) Release() {
	if !s.released.CompareAndSwap(false, true) {
		return
	}
	s.m.mon.remove(s)
	s.h.Release()
}

// Released reports whether the snapshot has ended.
func (s *Snapshot) Released() bool { return s.released.Load() }

// Kill force-closes the snapshot: its tracker references are dropped so
// garbage collection can proceed, and subsequent operations that depend on
// it observe Killed and must return an error to the client. This is the
// paper's conventional workaround 2 for version-space overflow ("the system
// closes problematic cursors or Trans-SI transactions by force and returns
// errors to clients", §1), implemented in HANA to handle application
// developers' mistakes.
func (s *Snapshot) Kill() {
	s.killed.Store(true)
	s.Release()
}

// Killed reports whether the snapshot was force-closed.
func (s *Snapshot) Killed() bool { return s.killed.Load() }
