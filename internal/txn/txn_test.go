package txn

import (
	"sync"
	"testing"
	"time"

	"hybridgc/internal/mvcc"
	"hybridgc/internal/sts"
	"hybridgc/internal/ts"
)

type nopRecord struct{ versioned bool }

func (r *nopRecord) InstallImage([]byte) {}
func (r *nopRecord) DropRecord()         {}
func (r *nopRecord) SetVersioned(v bool) { r.versioned = v }

func newTestManager(t *testing.T, cfg Config) *Manager {
	t.Helper()
	m := NewManager(mvcc.NewSpace(256), sts.NewRegistry(), cfg)
	t.Cleanup(m.Close)
	return m
}

// write links one update version for (table 1, rid) into the version space
// on behalf of txn.
func write(t *testing.T, m *Manager, txn *Txn, rec mvcc.RecordRef, rid uint64, img string) error {
	t.Helper()
	v := mvcc.NewVersion(mvcc.OpUpdate, ts.RecordKey{Table: 1, RID: ts.RID(rid)}, []byte(img), txn.Context())
	txn.Context().Add(v)
	_, err := m.Space().Prepend(rec, v, txn.ConflictCheck())
	return err
}

func TestCommitAssignsMonotonicCIDs(t *testing.T) {
	m := newTestManager(t, Config{})
	rec := &nopRecord{}
	var last ts.CID
	for i := 0; i < 10; i++ {
		txn := m.Begin(StmtSI, nil)
		if err := write(t, m, txn, rec, uint64(i), "x"); err != nil {
			t.Fatal(err)
		}
		cid, err := txn.Commit()
		if err != nil {
			t.Fatal(err)
		}
		if cid <= last {
			t.Fatalf("CID %d not monotonic after %d", cid, last)
		}
		last = cid
	}
	if m.CurrentTS() != last {
		t.Fatalf("CurrentTS = %d, want %d", m.CurrentTS(), last)
	}
	st := m.Stats()
	if st.TxnsCommitted != 10 || st.GroupsCommitted == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestGroupCommitShareSingleCID(t *testing.T) {
	m := newTestManager(t, Config{GroupCommitWindow: 20 * time.Millisecond, GroupCommitMaxBatch: 32})
	const n = 16
	cidCh := make(chan ts.CID, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(rid uint64) {
			defer wg.Done()
			txn := m.Begin(StmtSI, nil)
			if err := write(t, m, txn, &nopRecord{}, rid, "x"); err != nil {
				t.Error(err)
				return
			}
			cid, err := txn.Commit()
			if err != nil {
				t.Error(err)
				return
			}
			cidCh <- cid
		}(uint64(i))
	}
	wg.Wait()
	close(cidCh)
	distinct := map[ts.CID]bool{}
	for c := range cidCh {
		distinct[c] = true
	}
	groups := m.Stats().GroupsCommitted
	if int64(len(distinct)) != groups {
		t.Fatalf("distinct CIDs %d != groups %d", len(distinct), groups)
	}
	if len(distinct) == n {
		t.Logf("no batching happened (%d groups for %d txns) — timing-dependent, not fatal", len(distinct), n)
	}
	// The group list must hold the groups in CID order.
	var prev ts.CID
	m.Space().Groups.Ascending(func(g *mvcc.GroupCommitContext) bool {
		if g.CID() <= prev {
			t.Errorf("group list out of order: %d after %d", g.CID(), prev)
		}
		prev = g.CID()
		return true
	})
}

func TestReadOnlyCommit(t *testing.T) {
	m := newTestManager(t, Config{})
	txn := m.Begin(TransSI, nil)
	if m.Registry().GlobalLen() != 1 {
		t.Fatal("Trans-SI begin must register a snapshot")
	}
	cid, err := txn.Commit()
	if err != nil || cid != ts.Invalid {
		t.Fatalf("read-only commit = %d,%v", cid, err)
	}
	if m.Registry().GlobalLen() != 0 {
		t.Fatal("snapshot must be released at commit")
	}
	if _, err := txn.Commit(); err != ErrNotActive {
		t.Fatalf("double commit = %v, want ErrNotActive", err)
	}
}

func TestTransSISnapshotPinsHorizon(t *testing.T) {
	m := newTestManager(t, Config{SynchronousPropagation: true})
	rec := &nopRecord{}

	// Commit something to advance the timestamp.
	w := m.Begin(StmtSI, nil)
	if err := write(t, m, w, rec, 1, "a"); err != nil {
		t.Fatal(err)
	}
	cid1, _ := w.Commit()

	long := m.Begin(TransSI, nil)
	if long.Snapshot().TS() != cid1 {
		t.Fatalf("snapshot ts = %d, want %d", long.Snapshot().TS(), cid1)
	}
	// More commits advance CurrentTS but not the horizon.
	w2 := m.Begin(StmtSI, nil)
	if err := write(t, m, w2, rec, 2, "b"); err != nil {
		t.Fatal(err)
	}
	w2.Commit()
	if h := m.GlobalHorizon(); h != cid1 {
		t.Fatalf("horizon = %d, want pinned at %d", h, cid1)
	}
	long.Commit()
	if h := m.GlobalHorizon(); h != m.CurrentTS()+1 {
		t.Fatalf("horizon after release = %d, want %d", h, m.CurrentTS()+1)
	}
}

func TestWriteConflictUncommitted(t *testing.T) {
	m := newTestManager(t, Config{})
	rec := &nopRecord{}
	t1 := m.Begin(StmtSI, nil)
	t2 := m.Begin(StmtSI, nil)
	if err := write(t, m, t1, rec, 1, "t1"); err != nil {
		t.Fatal(err)
	}
	if err := write(t, m, t2, rec, 1, "t2"); err != ErrWriteConflict {
		t.Fatalf("concurrent write = %v, want ErrWriteConflict", err)
	}
	// Own second write is fine.
	if err := write(t, m, t1, rec, 1, "t1b"); err != nil {
		t.Fatalf("own re-write failed: %v", err)
	}
	t1.Abort()
	// After abort the record is writable again.
	if err := write(t, m, t2, rec, 1, "t2b"); err != nil {
		t.Fatalf("write after abort failed: %v", err)
	}
}

func TestFirstCommitterWinsUnderTransSI(t *testing.T) {
	m := newTestManager(t, Config{SynchronousPropagation: true})
	rec := &nopRecord{}
	seed := m.Begin(StmtSI, nil)
	if err := write(t, m, seed, rec, 1, "v0"); err != nil {
		t.Fatal(err)
	}
	seed.Commit()

	reader := m.Begin(TransSI, nil) // snapshot here
	other := m.Begin(StmtSI, nil)
	if err := write(t, m, other, rec, 1, "v1"); err != nil {
		t.Fatal(err)
	}
	other.Commit()

	// reader now tries to update the record that committed after its
	// snapshot: first-committer-wins must fire.
	if err := write(t, m, reader, rec, 1, "mine"); err != ErrWriteConflict {
		t.Fatalf("Trans-SI stale write = %v, want ErrWriteConflict", err)
	}
	reader.Abort()

	// Under Stmt-SI the same write succeeds (statement sees latest).
	late := m.Begin(StmtSI, nil)
	if err := write(t, m, late, rec, 1, "stmt"); err != nil {
		t.Fatalf("Stmt-SI write = %v", err)
	}
	late.Abort()
}

func TestAbortUndoesVersions(t *testing.T) {
	m := newTestManager(t, Config{})
	rec := &nopRecord{}
	txn := m.Begin(StmtSI, nil)
	for rid := uint64(1); rid <= 5; rid++ {
		if err := write(t, m, txn, rec, rid, "dirty"); err != nil {
			t.Fatal(err)
		}
	}
	if m.Space().Live() != 5 {
		t.Fatalf("live = %d", m.Space().Live())
	}
	txn.Abort()
	if m.Space().Live() != 0 {
		t.Fatalf("live after abort = %d, want 0", m.Space().Live())
	}
	if m.Stats().TxnsAborted != 1 {
		t.Fatal("abort not counted")
	}
	txn.Abort() // no-op
	if m.Stats().TxnsAborted != 1 {
		t.Fatal("double abort counted twice")
	}
}

func TestSnapshotScopeAndMonitor(t *testing.T) {
	m := newTestManager(t, Config{})
	s := m.AcquireSnapshot(KindCursor, []ts.TableID{3})
	defer s.Release()
	if !s.ScopeKnown() || !s.InScope(3) || s.InScope(4) {
		t.Fatal("scope checks broken")
	}
	unscoped := m.AcquireSnapshot(KindStatement, nil)
	defer unscoped.Release()
	if !unscoped.InScope(99) {
		t.Fatal("unscoped snapshot may access anything")
	}
	if m.Monitor().ActiveCount() != 2 {
		t.Fatalf("monitor count = %d", m.Monitor().ActiveCount())
	}
	// Long-lived detection: only the scoped, unreleased, unscoped-by-TG one
	// with known tables qualifies.
	time.Sleep(5 * time.Millisecond)
	ll := m.Monitor().LongLived(time.Millisecond)
	if len(ll) != 1 || ll[0] != s {
		t.Fatalf("LongLived = %v", ll)
	}
	s.Handle().ScopeToTables(s.Scope())
	if got := m.Monitor().LongLived(time.Millisecond); len(got) != 0 {
		t.Fatal("already-scoped snapshot must not reappear")
	}
	if min, ok := m.Monitor().OldestTS(); !ok || min != s.TS() {
		t.Fatalf("OldestTS = %d,%v", min, ok)
	}
}

func TestSnapshotDoubleReleaseSafe(t *testing.T) {
	m := newTestManager(t, Config{})
	s := m.AcquireSnapshot(KindStatement, nil)
	s.Release()
	s.Release() // must not panic
	if !s.Released() {
		t.Fatal("snapshot must report released")
	}
}

func TestManagerClose(t *testing.T) {
	m := NewManager(mvcc.NewSpace(64), sts.NewRegistry(), Config{})
	m.Close()
	m.Close() // idempotent
	txn := m.Begin(StmtSI, nil)
	if err := write(t, m, txn, &nopRecord{}, 1, "x"); err != nil {
		t.Fatal(err)
	}
	if _, err := txn.Commit(); err != ErrClosed {
		t.Fatalf("commit after close = %v, want ErrClosed", err)
	}
}

func TestHorizonsWithTableScoping(t *testing.T) {
	m := newTestManager(t, Config{SynchronousPropagation: true})
	rec := &nopRecord{}
	for i := 0; i < 3; i++ {
		w := m.Begin(StmtSI, nil)
		if err := write(t, m, w, rec, uint64(i), "x"); err != nil {
			t.Fatal(err)
		}
		w.Commit()
	}
	cur := m.CurrentTS()
	if h := m.GlobalHorizon(); h != cur+1 {
		t.Fatalf("idle horizon = %d, want %d", h, cur+1)
	}
	long := m.AcquireSnapshot(KindCursor, []ts.TableID{7})
	if h := m.GlobalHorizon(); h != long.TS() {
		t.Fatalf("horizon = %d, want %d", h, long.TS())
	}
	long.Handle().ScopeToTables(long.Scope())
	// Global horizon (union) still pinned; table horizons split.
	if h := m.GlobalHorizon(); h != long.TS() {
		t.Fatalf("union horizon = %d, want %d", h, long.TS())
	}
	if h := m.TableHorizon(7); h != long.TS() {
		t.Fatalf("TableHorizon(7) = %d", h)
	}
	if h := m.TableHorizon(8); h != cur+1 {
		t.Fatalf("TableHorizon(8) = %d, want %d", h, cur+1)
	}
	got := m.ActiveTimestamps()
	if len(got) != 1 || got[0] != long.TS() {
		t.Fatalf("ActiveTimestamps = %v", got)
	}
	long.Release()
}

// TestCloseCommitRace provokes the shutdown race: many goroutines submit
// commits while Close runs concurrently. Every Commit call must return —
// either its CID or ErrClosed — and never hang on its response channel.
// (A previous implementation could lose a commit's response when the send
// won the race against the committer's final drain.)
func TestCloseCommitRace(t *testing.T) {
	for round := 0; round < 30; round++ {
		m := NewManager(mvcc.NewSpace(64), sts.NewRegistry(), Config{})
		const committers = 8
		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < committers; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				<-start
				for i := 0; i < 50; i++ {
					txn := m.Begin(StmtSI, nil)
					if err := write(t, m, txn, &nopRecord{}, uint64(g*1000+i), "x"); err != nil {
						return
					}
					if _, err := txn.Commit(); err != nil {
						if err != ErrClosed {
							t.Errorf("commit error %v", err)
						}
						return
					}
				}
			}(g)
		}
		close(start)
		// Close somewhere in the middle of the commit storm.
		m.Close()
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatalf("round %d: committers hung after Close", round)
		}
	}
}
