// Package txn implements the unified transaction manager of §2: snapshot
// acquisition for statement-level and transaction-level snapshot isolation,
// write-write conflict detection, abort/undo, and the group commit protocol
// that assigns one CID per commit group through a single atomic store on the
// GroupCommitContext (§2.2), followed by asynchronous backward CID
// propagation. It also hosts the system monitor that tracks every active
// snapshot's age and table scope for the table garbage collector (§4.3).
//
// The two hot paths are built to scale across cores (DESIGN.md §15): snapshot
// acquisition publishes into the sts announcement array guarded only by a
// seqlock against GC scans, and commit submission goes through pooled
// requests and a sharded MPSC intake instead of one contended channel.
package txn

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hybridgc/internal/fault"
	"hybridgc/internal/mvcc"
	"hybridgc/internal/sts"
	"hybridgc/internal/ts"
)

// FPPublish fires after a commit group is durably logged but before its CID
// is published. Failing here must roll the group back AND fail-stop the
// engine: the group's record is already in the log, so reusing its CID for a
// later group would make replay drop that later group (the "CID <= recovered"
// skip during recovery).
var FPPublish = fault.Declare("txn/publish", "after durable logging, before the group CID is published")

// Isolation selects the snapshot isolation variant of §1.
type Isolation int

const (
	// StmtSI is statement-level snapshot isolation, HANA's default: every
	// statement reads at its own fresh snapshot.
	StmtSI Isolation = iota
	// TransSI is transaction-level snapshot isolation: one snapshot at
	// transaction begin covers every read in the transaction.
	TransSI
)

// String implements fmt.Stringer.
func (i Isolation) String() string {
	if i == TransSI {
		return "Trans-SI"
	}
	return "Stmt-SI"
}

// Errors returned by the transaction layer.
var (
	ErrWriteConflict = errors.New("txn: write-write conflict")
	ErrClosed        = errors.New("txn: manager closed")
	ErrNotActive     = errors.New("txn: transaction is not active")
)

// CommitLogger makes a commit group durable before it becomes visible: the
// committer calls LogCommit with the group's CID and member contexts after
// choosing the CID but before publishing it, and only publishes on success.
// A failure rolls the whole group back and surfaces the error to every
// member's Commit call. This is how the common persistency of §2.1 hooks
// into group commit.
type CommitLogger interface {
	LogCommit(cid ts.CID, members []*mvcc.TransContext) error
}

// Config tunes the group committer.
type Config struct {
	// GroupCommitMaxBatch caps how many transactions share one commit group.
	// Defaults to 64.
	GroupCommitMaxBatch int
	// GroupCommitWindow is how long the committer waits to fill a batch
	// after the first request. Zero (the default) batches only what is
	// already queued, which keeps single-threaded commits fast while still
	// grouping concurrent ones.
	GroupCommitWindow time.Duration
	// SynchronousPropagation makes backward CID propagation happen inside
	// the commit call instead of on the background propagator. Used by
	// deterministic tests.
	SynchronousPropagation bool
	// CommitLogger, when set, makes commit groups durable before they become
	// visible (write-ahead logging).
	CommitLogger CommitLogger
	// OnDurabilityFailure, when set, is called (once per incident, from the
	// committer goroutine) when a commit group could not be made durable or
	// could not be published after being logged. The embedding engine uses it
	// to transition into fail-stop read-only mode: after a logging failure no
	// later commit may be acknowledged, or an acked-but-unlogged commit could
	// survive in memory and vanish on restart.
	OnDurabilityFailure func(error)
}

func (c *Config) fill() {
	if c.GroupCommitMaxBatch <= 0 {
		c.GroupCommitMaxBatch = 64
	}
}

// Stats is a point-in-time counter snapshot of the manager.
type Stats struct {
	TxnsCommitted   int64
	TxnsAborted     int64
	GroupsCommitted int64
	Propagated      int64
	LastCID         ts.CID
}

// Manager is the unified transaction manager.
type Manager struct {
	cfg   Config
	space *mvcc.Space
	reg   *sts.Registry
	mon   *Monitor

	commitTS  atomic.Uint64
	nextTxnID atomic.Uint64

	// scanMu + scanSeq form the seqlock that replaces the old global
	// snapshot mutex: GC-side scans (SnapshotSetAndBound and the horizon
	// reads) serialize on scanMu and bracket their work with two scanSeq
	// increments (odd while scanning); snapshot acquirers never take the
	// mutex — they publish into the registry lock-free and retry if scanSeq
	// moved, so a scan observes every snapshot either in the registry or
	// with a timestamp at or above the bound it read. See DESIGN.md §15.
	scanMu  sync.Mutex
	scanSeq atomic.Uint64

	intake commitIntake
	propCh chan *mvcc.GroupCommitContext
	quit   chan struct{}
	wg     sync.WaitGroup
	closed atomic.Bool
	// sendGate serializes commit submission against shutdown: senders hold
	// the read side while enqueueing, Close takes the write side before
	// signalling quit, so every request that entered the intake is seen by
	// the committer's final drain and answered — no sender can block
	// forever on its done channel.
	sendGate   sync.RWMutex
	sendClosed bool

	txnsCommitted   atomic.Int64
	txnsAborted     atomic.Int64
	groupsCommitted atomic.Int64
	propagated      atomic.Int64
}

// NewManager creates a manager over the given version space and snapshot
// registry, and starts the group committer and CID propagator.
func NewManager(space *mvcc.Space, reg *sts.Registry, cfg Config) *Manager {
	cfg.fill()
	m := &Manager{
		cfg:    cfg,
		space:  space,
		reg:    reg,
		mon:    newMonitor(),
		propCh: make(chan *mvcc.GroupCommitContext, 1024),
		quit:   make(chan struct{}),
	}
	m.intake.init()
	m.wg.Add(2)
	go m.committer()
	go m.propagator()
	return m
}

// Close stops the background goroutines. Commits submitted before Close
// still receive their result (or ErrClosed from the final drain); commits
// submitted after fail immediately with ErrClosed. Safe to call once.
func (m *Manager) Close() {
	if !m.closed.CompareAndSwap(false, true) {
		return
	}
	// Bar new senders first; in-flight enqueues finish under the read lock,
	// so by the time quit closes every accepted request is in the intake
	// and the committer's final drain answers it.
	m.sendGate.Lock()
	m.sendClosed = true
	m.sendGate.Unlock()
	close(m.quit)
	m.wg.Wait()
}

// submit enqueues a commit request unless the manager is closed.
func (m *Manager) submit(req *commitReq) error {
	m.sendGate.RLock()
	defer m.sendGate.RUnlock()
	if m.sendClosed {
		return ErrClosed
	}
	m.intake.put(req)
	return nil
}

// Space returns the version space the manager commits into.
func (m *Manager) Space() *mvcc.Space { return m.space }

// Registry returns the snapshot timestamp registry.
func (m *Manager) Registry() *sts.Registry { return m.reg }

// Monitor returns the active-snapshot monitor.
func (m *Manager) Monitor() *Monitor { return m.mon }

// CurrentTS returns the latest assigned commit identifier — the value a new
// snapshot adopts as its timestamp.
func (m *Manager) CurrentTS() ts.CID { return ts.CID(m.commitTS.Load()) }

// beginScan/endScan bracket a GC-side read of the snapshot registry. The
// mutex serializes scanners against each other; the sequence counter is what
// acquirers validate against (odd = scan in progress).
func (m *Manager) beginScan() {
	m.scanMu.Lock()
	m.scanSeq.Add(1)
}

func (m *Manager) endScan() {
	m.scanSeq.Add(1)
	m.scanMu.Unlock()
}

// GlobalHorizon returns the timestamp below which whole versions are
// invisible to every active snapshot: the minimum over every snapshot
// announcement (§4.4), or CurrentTS()+1 when no snapshot is active.
func (m *Manager) GlobalHorizon() ts.CID {
	m.beginScan()
	defer m.endScan()
	if min, ok := m.reg.UnionMin(); ok {
		return min
	}
	return m.CurrentTS() + 1
}

// TableHorizon returns the reclamation horizon for one table: the minimum of
// the unscoped snapshots and that table's own trackers (§4.3 step 3), or
// CurrentTS()+1 when nothing constrains the table.
func (m *Manager) TableHorizon(tid ts.TableID) ts.CID {
	m.beginScan()
	defer m.endScan()
	if min, ok := m.reg.EffectiveMin(tid); ok {
		return min
	}
	return m.CurrentTS() + 1
}

// PartitionHorizon returns the reclamation horizon for versions inside one
// partition of a table, or CurrentTS()+1 when nothing constrains it.
func (m *Manager) PartitionHorizon(tid ts.TableID, p ts.PartitionID) ts.CID {
	m.beginScan()
	defer m.endScan()
	if min, ok := m.reg.EffectiveMinAt(tid, p); ok {
		return min
	}
	return m.CurrentTS() + 1
}

// GlobalTrackerHorizon returns the bound below which only table- or
// partition-scoped snapshots can still pin versions: the minimum over the
// unscoped snapshot announcements, or CurrentTS()+1 when there are none.
// The table collector uses it to size the gap table GC opened up.
func (m *Manager) GlobalTrackerHorizon() ts.CID {
	m.beginScan()
	defer m.endScan()
	if min, ok := m.reg.GlobalMin(); ok {
		return min
	}
	return m.CurrentTS() + 1
}

// ActiveTimestamps returns the ascending set of all active snapshot
// timestamps — the S sequence of the interval collector.
func (m *Manager) ActiveTimestamps() []ts.CID {
	m.beginScan()
	defer m.endScan()
	return m.reg.UnionSnapshot()
}

// SnapshotSetAndBound captures the active snapshot timestamp set together
// with the current commit timestamp. Snapshot acquisition validates against
// the scan's seqlock window, so every snapshot held across or registered
// after this call either appears in the returned set or has a timestamp >=
// the returned bound — the safety condition interval reclamation needs to
// collect versions above max(S) up to the bound.
func (m *Manager) SnapshotSetAndBound() ([]ts.CID, ts.CID) {
	m.beginScan()
	defer m.endScan()
	bound := m.CurrentTS()
	return m.reg.UnionSnapshot(), bound
}

// Stats returns current counters.
func (m *Manager) Stats() Stats {
	return Stats{
		TxnsCommitted:   m.txnsCommitted.Load(),
		TxnsAborted:     m.txnsAborted.Load(),
		GroupsCommitted: m.groupsCommitted.Load(),
		Propagated:      m.propagated.Load(),
		LastCID:         m.CurrentTS(),
	}
}

type commitReq struct {
	tctx *mvcc.TransContext
	done chan commitResult
	// stripe picks the intake queue this request enqueues to. It is assigned
	// round-robin when the request object is first created and then travels
	// with the object through the pool, so each P's pooled requests keep
	// hitting the same stripe — per-P striping without goroutine IDs.
	stripe uint32
}

type commitResult struct {
	cid ts.CID
	err error
}

var commitReqSeed atomic.Uint32

// commitReqPool recycles commit requests and their (cap-1) done channels, so
// the commit fast path allocates neither.
var commitReqPool = sync.Pool{New: func() any {
	return &commitReq{
		done:   make(chan commitResult, 1),
		stripe: commitReqSeed.Add(1) & intakeStripeMask,
	}
}}

func getCommitReq(tctx *mvcc.TransContext) *commitReq {
	r := commitReqPool.Get().(*commitReq)
	r.tctx = tctx
	return r
}

// putCommitReq returns a request whose result has been consumed. The done
// channel is empty again (commit answers are single-shot), so the object is
// immediately reusable.
func putCommitReq(r *commitReq) {
	r.tctx = nil
	commitReqPool.Put(r)
}

// committer is the single goroutine that forms commit groups: it sweeps the
// sharded intake into a batch, creates one GroupCommitContext per
// GroupCommitMaxBatch-sized chunk, assigns the CID with one atomic store,
// then advances the global commit timestamp and releases the waiters.
//
// Barrier requests need one extra sweep before they are acknowledged: a
// sweep visits stripes in a fixed order, so it can catch a barrier on an
// early stripe while missing a commit that was enqueued to an
// already-visited stripe strictly before the barrier was submitted. Every
// such commit is in its stripe before the catching sweep finishes, so the
// *next* sweep is guaranteed to include it — barriers caught by sweep k are
// therefore answered only after sweep k+1's batches have been published.
func (m *Manager) committer() {
	defer m.wg.Done()
	var (
		drained  []*commitReq
		real     []*commitReq
		barBufs  [2][]*commitReq // double-buffered: one side is the live carry
		barside  int
		carry    []*commitReq // barriers awaiting their fence sweep
		timer    *time.Timer
	)
	for {
		if len(carry) == 0 {
			select {
			case <-m.intake.notify:
			case <-m.quit:
				m.failPending(nil)
				return
			}
		} else {
			// A carry is pending: sweep immediately (its fence), without
			// waiting for a notification that may never come.
			select {
			case <-m.quit:
				m.failPending(carry)
				return
			default:
			}
		}
		drained = m.intake.drain(drained[:0])
		real = real[:0]
		barriers := barBufs[barside][:0]
		real, barriers = splitRequests(drained, real, barriers)

		// Wait up to the configured window for stragglers, reusing one timer
		// across batches.
		if m.cfg.GroupCommitWindow > 0 && len(real) > 0 && len(real) < m.cfg.GroupCommitMaxBatch {
			if timer == nil {
				timer = time.NewTimer(m.cfg.GroupCommitWindow)
			} else {
				timer.Reset(m.cfg.GroupCommitWindow)
			}
			window := true
			for window && len(real) < m.cfg.GroupCommitMaxBatch {
				select {
				case <-m.intake.notify:
					drained = m.intake.drain(drained[:0])
					real, barriers = splitRequests(drained, real, barriers)
				case <-timer.C:
					window = false
				case <-m.quit:
					window = false
				}
			}
			if window {
				// Left the loop with the timer still armed: disarm and drain
				// so the next Reset starts clean.
				if !timer.Stop() {
					select {
					case <-timer.C:
					default:
					}
				}
			}
		}

		for start := 0; start < len(real); start += m.cfg.GroupCommitMaxBatch {
			end := start + m.cfg.GroupCommitMaxBatch
			if end > len(real) {
				end = len(real)
			}
			m.commitBatch(real[start:end])
		}
		// This sweep's publications are the fence the previous sweep's
		// barriers were waiting for.
		for _, b := range carry {
			b.done <- commitResult{}
		}
		barBufs[barside] = barriers
		carry = barriers
		barside ^= 1
	}
}

// splitRequests partitions a sweep into real commits and barriers, appending
// to the provided buffers.
func splitRequests(reqs, real, barriers []*commitReq) ([]*commitReq, []*commitReq) {
	for _, r := range reqs {
		if r.tctx == nil {
			barriers = append(barriers, r)
		} else {
			real = append(real, r)
		}
	}
	return real, barriers
}

func (m *Manager) commitBatch(real []*commitReq) {
	if len(real) == 0 {
		return
	}
	// The member slice is retained by the group for its whole lifetime, so it
	// cannot come from a scratch buffer.
	tcs := make([]*mvcc.TransContext, 0, len(real))
	for _, r := range real {
		tcs = append(tcs, r.tctx)
	}
	cid := ts.CID(m.commitTS.Load()) + 1
	// Write-ahead logging: the group must be durable before anything makes
	// it visible. The CID is chosen but not yet assigned, so concurrent
	// readers cannot observe the group while it is being logged.
	if logger := m.cfg.CommitLogger; logger != nil {
		if err := logger.LogCommit(cid, tcs); err != nil {
			m.failBatch(tcs, real, fmt.Errorf("txn: commit logging failed: %w", err))
			return
		}
	}
	if err := fault.Hit(FPPublish); err != nil {
		// The group is in the log but will never be published. The CID must
		// not be reused (replay would then skip the next real group), so this
		// is unrecoverable without restarting through recovery: fail-stop.
		m.failBatch(tcs, real, fmt.Errorf("txn: publish failed after durable logging: %w", err))
		return
	}
	gcc := mvcc.NewGroup(tcs)
	// Publish the CID on the group first: the single store below makes every
	// version of every member transaction resolvable. Only then advance the
	// global commit timestamp, so a snapshot that adopts the new timestamp
	// is guaranteed to see the whole group.
	gcc.AssignCID(cid)
	m.commitTS.Store(uint64(cid))
	m.space.Groups.Append(gcc)
	m.groupsCommitted.Add(1)
	m.txnsCommitted.Add(int64(len(real)))
	for _, r := range real {
		r.done <- commitResult{cid: cid}
	}
	if m.cfg.SynchronousPropagation {
		m.propagated.Add(int64(gcc.Propagate()))
		return
	}
	select {
	case m.propCh <- gcc:
	default:
		// Propagator backlogged; propagate inline rather than dropping.
		m.propagated.Add(int64(gcc.Propagate()))
	}
}

// failBatch rolls back every member of a batch whose logging or publication
// failed, answers all waiters with err, counts the aborts, and notifies the
// durability-failure hook so the engine can fail-stop.
func (m *Manager) failBatch(tcs []*mvcc.TransContext, real []*commitReq, err error) {
	m.rollbackBatch(tcs)
	m.txnsAborted.Add(int64(len(real)))
	for _, r := range real {
		r.done <- commitResult{err: err}
	}
	if m.cfg.OnDurabilityFailure != nil {
		m.cfg.OnDurabilityFailure(err)
	}
}

// rollbackBatch undoes every version of a batch whose logging failed.
func (m *Manager) rollbackBatch(tcs []*mvcc.TransContext) {
	for _, tc := range tcs {
		vs := tc.Versions()
		for i := len(vs) - 1; i >= 0; i-- {
			m.space.Rollback(vs[i])
		}
	}
}

// Barrier blocks until every commit submitted before it has been published
// (or failed). Checkpointing fences on it after rotating the log so the
// snapshot it takes covers everything written to the closed segments.
func (m *Manager) Barrier() error {
	req := getCommitReq(nil)
	if err := m.submit(req); err != nil {
		putCommitReq(req)
		return err
	}
	res := <-req.done
	putCommitReq(req)
	return res.err
}

// SetCommitTS installs the recovered commit timestamp. Must be called before
// any transaction runs.
func (m *Manager) SetCommitTS(c ts.CID) { m.commitTS.Store(uint64(c)) }

// PublishReplicated publishes one already-durable commit group at its
// original, primary-assigned CID — the replica apply path. It mirrors the
// group committer's publication sequence (assign the CID on the group, then
// advance the commit timestamp, then link the group) minus logging, batching
// and conflict handling: the primary already did all three, and the WAL
// stream delivers groups serially in CID order. Calls must be serial with
// strictly ascending CIDs; a CID at or below the current timestamp is a
// protocol error (the applier deduplicates before calling).
func (m *Manager) PublishReplicated(cid ts.CID, tc *mvcc.TransContext) error {
	if m.closed.Load() {
		return ErrClosed
	}
	if cur := ts.CID(m.commitTS.Load()); cid <= cur {
		return fmt.Errorf("txn: replicated CID %d not above current %d", cid, cur)
	}
	gcc := mvcc.NewGroup([]*mvcc.TransContext{tc})
	gcc.AssignCID(cid)
	m.commitTS.Store(uint64(cid))
	m.space.Groups.Append(gcc)
	m.groupsCommitted.Add(1)
	m.txnsCommitted.Add(1)
	// Propagation is synchronous: the applier is one goroutine and the next
	// record may depend on the chain state this group produced.
	m.propagated.Add(int64(gcc.Propagate()))
	return nil
}

// failPending drains and fails requests still queued at shutdown, including
// barriers carried from the last sweep.
func (m *Manager) failPending(carry []*commitReq) {
	for _, r := range carry {
		r.done <- commitResult{err: ErrClosed}
	}
	for _, r := range m.intake.drain(nil) {
		r.done <- commitResult{err: ErrClosed}
	}
}

// propagator performs the asynchronous backward CID propagation of §2.2:
// writing the group CID into each member version so later visibility checks
// need no pointer chase.
func (m *Manager) propagator() {
	defer m.wg.Done()
	for {
		select {
		case g := <-m.propCh:
			m.propagated.Add(int64(g.Propagate()))
		case <-m.quit:
			for {
				select {
				case g := <-m.propCh:
					m.propagated.Add(int64(g.Propagate()))
				default:
					return
				}
			}
		}
	}
}
