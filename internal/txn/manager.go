// Package txn implements the unified transaction manager of §2: snapshot
// acquisition for statement-level and transaction-level snapshot isolation,
// write-write conflict detection, abort/undo, and the group commit protocol
// that assigns one CID per commit group through a single atomic store on the
// GroupCommitContext (§2.2), followed by asynchronous backward CID
// propagation. It also hosts the system monitor that tracks every active
// snapshot's age and table scope for the table garbage collector (§4.3).
package txn

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hybridgc/internal/fault"
	"hybridgc/internal/mvcc"
	"hybridgc/internal/sts"
	"hybridgc/internal/ts"
)

// FPPublish fires after a commit group is durably logged but before its CID
// is published. Failing here must roll the group back AND fail-stop the
// engine: the group's record is already in the log, so reusing its CID for a
// later group would make replay drop that later group (the "CID <= recovered"
// skip during recovery).
var FPPublish = fault.Declare("txn/publish", "after durable logging, before the group CID is published")

// Isolation selects the snapshot isolation variant of §1.
type Isolation int

const (
	// StmtSI is statement-level snapshot isolation, HANA's default: every
	// statement reads at its own fresh snapshot.
	StmtSI Isolation = iota
	// TransSI is transaction-level snapshot isolation: one snapshot at
	// transaction begin covers every read in the transaction.
	TransSI
)

// String implements fmt.Stringer.
func (i Isolation) String() string {
	if i == TransSI {
		return "Trans-SI"
	}
	return "Stmt-SI"
}

// Errors returned by the transaction layer.
var (
	ErrWriteConflict = errors.New("txn: write-write conflict")
	ErrClosed        = errors.New("txn: manager closed")
	ErrNotActive     = errors.New("txn: transaction is not active")
)

// CommitLogger makes a commit group durable before it becomes visible: the
// committer calls LogCommit with the group's CID and member contexts after
// choosing the CID but before publishing it, and only publishes on success.
// A failure rolls the whole group back and surfaces the error to every
// member's Commit call. This is how the common persistency of §2.1 hooks
// into group commit.
type CommitLogger interface {
	LogCommit(cid ts.CID, members []*mvcc.TransContext) error
}

// Config tunes the group committer.
type Config struct {
	// GroupCommitMaxBatch caps how many transactions share one commit group.
	// Defaults to 64.
	GroupCommitMaxBatch int
	// GroupCommitWindow is how long the committer waits to fill a batch
	// after the first request. Zero (the default) batches only what is
	// already queued, which keeps single-threaded commits fast while still
	// grouping concurrent ones.
	GroupCommitWindow time.Duration
	// SynchronousPropagation makes backward CID propagation happen inside
	// the commit call instead of on the background propagator. Used by
	// deterministic tests.
	SynchronousPropagation bool
	// CommitLogger, when set, makes commit groups durable before they become
	// visible (write-ahead logging).
	CommitLogger CommitLogger
	// OnDurabilityFailure, when set, is called (once per incident, from the
	// committer goroutine) when a commit group could not be made durable or
	// could not be published after being logged. The embedding engine uses it
	// to transition into fail-stop read-only mode: after a logging failure no
	// later commit may be acknowledged, or an acked-but-unlogged commit could
	// survive in memory and vanish on restart.
	OnDurabilityFailure func(error)
}

func (c *Config) fill() {
	if c.GroupCommitMaxBatch <= 0 {
		c.GroupCommitMaxBatch = 64
	}
}

// Stats is a point-in-time counter snapshot of the manager.
type Stats struct {
	TxnsCommitted   int64
	TxnsAborted     int64
	GroupsCommitted int64
	Propagated      int64
	LastCID         ts.CID
}

// Manager is the unified transaction manager.
type Manager struct {
	cfg   Config
	space *mvcc.Space
	reg   *sts.Registry
	mon   *Monitor

	commitTS  atomic.Uint64
	nextTxnID atomic.Uint64
	// snapMu makes snapshot acquisition atomic with tracker registration,
	// so SnapshotSetAndBound can promise that later snapshots sit at or
	// above its bound.
	snapMu sync.Mutex

	commitCh chan *commitReq
	propCh   chan *mvcc.GroupCommitContext
	quit     chan struct{}
	wg       sync.WaitGroup
	closed   atomic.Bool
	// sendGate serializes commit submission against shutdown: senders hold
	// the read side while enqueueing, Close takes the write side before
	// signalling quit, so every request that entered the channel is seen by
	// the committer's final drain and answered — no sender can block
	// forever on its done channel.
	sendGate   sync.RWMutex
	sendClosed bool

	txnsCommitted   atomic.Int64
	txnsAborted     atomic.Int64
	groupsCommitted atomic.Int64
	propagated      atomic.Int64
}

// NewManager creates a manager over the given version space and snapshot
// registry, and starts the group committer and CID propagator.
func NewManager(space *mvcc.Space, reg *sts.Registry, cfg Config) *Manager {
	cfg.fill()
	m := &Manager{
		cfg:      cfg,
		space:    space,
		reg:      reg,
		mon:      newMonitor(),
		commitCh: make(chan *commitReq, 1024),
		propCh:   make(chan *mvcc.GroupCommitContext, 1024),
		quit:     make(chan struct{}),
	}
	m.wg.Add(2)
	go m.committer()
	go m.propagator()
	return m
}

// Close stops the background goroutines. Commits submitted before Close
// still receive their result (or ErrClosed from the final drain); commits
// submitted after fail immediately with ErrClosed. Safe to call once.
func (m *Manager) Close() {
	if !m.closed.CompareAndSwap(false, true) {
		return
	}
	// Bar new senders first; in-flight enqueues finish under the read lock,
	// so by the time quit closes every accepted request is in the channel
	// and the committer's final drain answers it.
	m.sendGate.Lock()
	m.sendClosed = true
	m.sendGate.Unlock()
	close(m.quit)
	m.wg.Wait()
}

// submit enqueues a commit request unless the manager is closed.
func (m *Manager) submit(req *commitReq) error {
	m.sendGate.RLock()
	defer m.sendGate.RUnlock()
	if m.sendClosed {
		return ErrClosed
	}
	m.commitCh <- req
	return nil
}

// Space returns the version space the manager commits into.
func (m *Manager) Space() *mvcc.Space { return m.space }

// Registry returns the snapshot timestamp registry.
func (m *Manager) Registry() *sts.Registry { return m.reg }

// Monitor returns the active-snapshot monitor.
func (m *Manager) Monitor() *Monitor { return m.mon }

// CurrentTS returns the latest assigned commit identifier — the value a new
// snapshot adopts as its timestamp.
func (m *Manager) CurrentTS() ts.CID { return ts.CID(m.commitTS.Load()) }

// GlobalHorizon returns the timestamp below which whole versions are
// invisible to every active snapshot: the minimum over the global and all
// per-table trackers (§4.4), or CurrentTS()+1 when no snapshot is active.
func (m *Manager) GlobalHorizon() ts.CID {
	if min, ok := m.reg.UnionMin(); ok {
		return min
	}
	return m.CurrentTS() + 1
}

// TableHorizon returns the reclamation horizon for one table: the minimum of
// the global tracker and that table's own tracker (§4.3 step 3), or
// CurrentTS()+1 when nothing constrains the table.
func (m *Manager) TableHorizon(tid ts.TableID) ts.CID {
	if min, ok := m.reg.EffectiveMin(tid); ok {
		return min
	}
	return m.CurrentTS() + 1
}

// PartitionHorizon returns the reclamation horizon for versions inside one
// partition of a table, or CurrentTS()+1 when nothing constrains it.
func (m *Manager) PartitionHorizon(tid ts.TableID, p ts.PartitionID) ts.CID {
	if min, ok := m.reg.EffectiveMinAt(tid, p); ok {
		return min
	}
	return m.CurrentTS() + 1
}

// ActiveTimestamps returns the ascending set of all active snapshot
// timestamps (global plus per-table trackers) — the S sequence of the
// interval collector.
func (m *Manager) ActiveTimestamps() []ts.CID {
	return m.reg.Union().Snapshot()
}

// SnapshotSetAndBound atomically captures the active snapshot timestamp set
// together with the current commit timestamp. Snapshot acquisition holds the
// same latch, so every snapshot registered after this call returns has a
// timestamp >= the returned bound — the safety condition interval
// reclamation needs to collect versions above max(S) up to the bound.
func (m *Manager) SnapshotSetAndBound() ([]ts.CID, ts.CID) {
	m.snapMu.Lock()
	defer m.snapMu.Unlock()
	return m.reg.Union().Snapshot(), m.CurrentTS()
}

// Stats returns current counters.
func (m *Manager) Stats() Stats {
	return Stats{
		TxnsCommitted:   m.txnsCommitted.Load(),
		TxnsAborted:     m.txnsAborted.Load(),
		GroupsCommitted: m.groupsCommitted.Load(),
		Propagated:      m.propagated.Load(),
		LastCID:         m.CurrentTS(),
	}
}

type commitReq struct {
	tctx *mvcc.TransContext
	done chan commitResult
}

type commitResult struct {
	cid ts.CID
	err error
}

// committer is the single goroutine that forms commit groups: it drains
// queued commit requests into a batch, creates one GroupCommitContext for
// the whole batch, assigns the CID with one atomic store, then advances the
// global commit timestamp and releases the waiters.
func (m *Manager) committer() {
	defer m.wg.Done()
	for {
		var first *commitReq
		select {
		case first = <-m.commitCh:
		case <-m.quit:
			m.failPending()
			return
		}
		batch := []*commitReq{first}
		batch = m.fillBatch(batch)
		m.commitBatch(batch)
	}
}

// fillBatch gathers more queued requests, waiting up to the configured
// window for stragglers.
func (m *Manager) fillBatch(batch []*commitReq) []*commitReq {
	var deadline <-chan time.Time
	if m.cfg.GroupCommitWindow > 0 {
		t := time.NewTimer(m.cfg.GroupCommitWindow)
		defer t.Stop()
		deadline = t.C
	}
	for len(batch) < m.cfg.GroupCommitMaxBatch {
		select {
		case r := <-m.commitCh:
			batch = append(batch, r)
		case <-deadline:
			return batch
		default:
			if deadline == nil {
				return batch
			}
			select {
			case r := <-m.commitCh:
				batch = append(batch, r)
			case <-deadline:
				return batch
			case <-m.quit:
				return batch
			}
		}
	}
	return batch
}

func (m *Manager) commitBatch(batch []*commitReq) {
	// Split out barrier requests (tctx == nil): they are acknowledged after
	// every real commit in this batch is published, giving callers a fence
	// over the committer's FIFO.
	var barriers []*commitReq
	tcs := make([]*mvcc.TransContext, 0, len(batch))
	real := make([]*commitReq, 0, len(batch))
	for _, r := range batch {
		if r.tctx == nil {
			barriers = append(barriers, r)
			continue
		}
		tcs = append(tcs, r.tctx)
		real = append(real, r)
	}
	if len(real) == 0 {
		for _, r := range barriers {
			r.done <- commitResult{}
		}
		return
	}
	cid := ts.CID(m.commitTS.Load()) + 1
	// Write-ahead logging: the group must be durable before anything makes
	// it visible. The CID is chosen but not yet assigned, so concurrent
	// readers cannot observe the group while it is being logged.
	if logger := m.cfg.CommitLogger; logger != nil {
		if err := logger.LogCommit(cid, tcs); err != nil {
			m.failBatch(tcs, real, barriers, fmt.Errorf("txn: commit logging failed: %w", err))
			return
		}
	}
	if err := fault.Hit(FPPublish); err != nil {
		// The group is in the log but will never be published. The CID must
		// not be reused (replay would then skip the next real group), so this
		// is unrecoverable without restarting through recovery: fail-stop.
		m.failBatch(tcs, real, barriers, fmt.Errorf("txn: publish failed after durable logging: %w", err))
		return
	}
	gcc := mvcc.NewGroup(tcs)
	// Publish the CID on the group first: the single store below makes every
	// version of every member transaction resolvable. Only then advance the
	// global commit timestamp, so a snapshot that adopts the new timestamp
	// is guaranteed to see the whole group.
	gcc.AssignCID(cid)
	m.commitTS.Store(uint64(cid))
	m.space.Groups.Append(gcc)
	m.groupsCommitted.Add(1)
	m.txnsCommitted.Add(int64(len(real)))
	for _, r := range real {
		r.done <- commitResult{cid: cid}
	}
	for _, r := range barriers {
		r.done <- commitResult{}
	}
	if m.cfg.SynchronousPropagation {
		m.propagated.Add(int64(gcc.Propagate()))
		return
	}
	select {
	case m.propCh <- gcc:
	default:
		// Propagator backlogged; propagate inline rather than dropping.
		m.propagated.Add(int64(gcc.Propagate()))
	}
}

// failBatch rolls back every member of a batch whose logging or publication
// failed, answers all waiters with err, counts the aborts, and notifies the
// durability-failure hook so the engine can fail-stop.
func (m *Manager) failBatch(tcs []*mvcc.TransContext, real, barriers []*commitReq, err error) {
	m.rollbackBatch(tcs)
	m.txnsAborted.Add(int64(len(real)))
	for _, r := range real {
		r.done <- commitResult{err: err}
	}
	for _, r := range barriers {
		r.done <- commitResult{}
	}
	if m.cfg.OnDurabilityFailure != nil {
		m.cfg.OnDurabilityFailure(err)
	}
}

// rollbackBatch undoes every version of a batch whose logging failed.
func (m *Manager) rollbackBatch(tcs []*mvcc.TransContext) {
	for _, tc := range tcs {
		vs := tc.Versions()
		for i := len(vs) - 1; i >= 0; i-- {
			m.space.Rollback(vs[i])
		}
	}
}

// Barrier blocks until every commit submitted before it has been published
// (or failed). Checkpointing fences on it after rotating the log so the
// snapshot it takes covers everything written to the closed segments.
func (m *Manager) Barrier() error {
	req := &commitReq{done: make(chan commitResult, 1)}
	if err := m.submit(req); err != nil {
		return err
	}
	res := <-req.done
	return res.err
}

// SetCommitTS installs the recovered commit timestamp. Must be called before
// any transaction runs.
func (m *Manager) SetCommitTS(c ts.CID) { m.commitTS.Store(uint64(c)) }

// PublishReplicated publishes one already-durable commit group at its
// original, primary-assigned CID — the replica apply path. It mirrors the
// group committer's publication sequence (assign the CID on the group, then
// advance the commit timestamp, then link the group) minus logging, batching
// and conflict handling: the primary already did all three, and the WAL
// stream delivers groups serially in CID order. Calls must be serial with
// strictly ascending CIDs; a CID at or below the current timestamp is a
// protocol error (the applier deduplicates before calling).
func (m *Manager) PublishReplicated(cid ts.CID, tc *mvcc.TransContext) error {
	if m.closed.Load() {
		return ErrClosed
	}
	if cur := ts.CID(m.commitTS.Load()); cid <= cur {
		return fmt.Errorf("txn: replicated CID %d not above current %d", cid, cur)
	}
	gcc := mvcc.NewGroup([]*mvcc.TransContext{tc})
	gcc.AssignCID(cid)
	m.commitTS.Store(uint64(cid))
	m.space.Groups.Append(gcc)
	m.groupsCommitted.Add(1)
	m.txnsCommitted.Add(1)
	// Propagation is synchronous: the applier is one goroutine and the next
	// record may depend on the chain state this group produced.
	m.propagated.Add(int64(gcc.Propagate()))
	return nil
}

// failPending drains and fails requests still queued at shutdown.
func (m *Manager) failPending() {
	for {
		select {
		case r := <-m.commitCh:
			r.done <- commitResult{err: ErrClosed}
		default:
			return
		}
	}
}

// propagator performs the asynchronous backward CID propagation of §2.2:
// writing the group CID into each member version so later visibility checks
// need no pointer chase.
func (m *Manager) propagator() {
	defer m.wg.Done()
	for {
		select {
		case g := <-m.propCh:
			m.propagated.Add(int64(g.Propagate()))
		case <-m.quit:
			for {
				select {
				case g := <-m.propCh:
					m.propagated.Add(int64(g.Propagate()))
				default:
					return
				}
			}
		}
	}
}
