package txn_test

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hybridgc/internal/gc"
	"hybridgc/internal/mvcc"
	"hybridgc/internal/sts"
	"hybridgc/internal/ts"
	"hybridgc/internal/txn"
)

// TestSnapshotSetAndBoundInvariantStress hammers lock-free snapshot
// Acquire/Release on all cores against concurrent commits, a scanning
// goroutine, and an interval-GC loop, and asserts the seqlock's safety
// condition: for every completed SnapshotSetAndBound scan, a snapshot held
// afterwards either appears in the scan's set or sits at or above its bound.
// That is exactly what interval reclamation relies on to collect versions
// between max(S) and the bound — a timestamp slipping under the bound
// unannounced would let GC reclaim a version the snapshot can still read.
//
// Red-test property: reverting the seqlock (publishing snapshots without
// validating against scanSeq, or scanning without beginScan/endScan) makes
// this fail within a few hundred milliseconds on a multicore run, because an
// acquirer can read the commit timestamp before a scan captures its bound
// and announce itself only after the scan's set was built.
func TestSnapshotSetAndBoundInvariantStress(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))

	m := txn.NewManager(mvcc.NewSpace(1<<16), sts.NewRegistry(), txn.Config{SynchronousPropagation: true})
	defer m.Close()

	duration := 2 * time.Second
	if testing.Short() {
		duration = 300 * time.Millisecond
	}

	// scan is one published SnapshotSetAndBound result. set is a map for
	// O(1) membership checks on the assert path.
	type scan struct {
		bound ts.CID
		set   map[ts.CID]struct{}
	}
	var latest atomic.Pointer[scan]

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Writers advance the commit timestamp as fast as they can, so scans and
	// acquirers constantly race on CurrentTS.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(base uint64) {
			defer wg.Done()
			rec := &nopStressRecord{}
			rid := base
			for {
				select {
				case <-stop:
					return
				default:
				}
				rid++
				tx := m.Begin(txn.StmtSI, nil)
				v := mvcc.NewVersion(mvcc.OpInsert,
					ts.RecordKey{Table: 1, RID: ts.RID(rid)}, []byte("x"), tx.Context())
				tx.Context().Add(v)
				if _, err := m.Space().Prepend(rec, v, tx.ConflictCheck()); err != nil {
					t.Error(err)
					return
				}
				if _, err := tx.Commit(); err != nil {
					t.Error(err)
					return
				}
			}
		}(uint64(w) << 32)
	}

	// Scanner: captures set+bound and publishes it for the acquirers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			set, bound := m.SnapshotSetAndBound()
			s := &scan{bound: bound, set: make(map[ts.CID]struct{}, len(set))}
			for _, c := range set {
				s.set[c] = struct{}{}
			}
			latest.Store(s)
		}
	}()

	// Interval GC loop: a second concurrent scanner that also reclaims, so
	// the invariant is exercised by the real consumer, not just the checker.
	wg.Add(1)
	go func() {
		defer wg.Done()
		ic := gc.NewInterval(m)
		for {
			select {
			case <-stop:
				return
			default:
			}
			ic.Collect()
		}
	}()

	// Acquirers: grab a snapshot, then check it against the latest completed
	// scan. The scan was published before the check, so it either completed
	// before our acquire (then we must be in its set or at/above its bound)
	// or overlapped it (then the seqlock forced our acquire to land cleanly
	// on one side: in the set if before, at/above the bound if after —
	// bounds only grow while sets only see held announcements).
	var checks atomic.Int64
	for a := 0; a < 4; a++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := m.AcquireSnapshot(txn.KindStatement, nil)
				if p := latest.Load(); p != nil {
					if _, in := p.set[s.TS()]; !in && s.TS() < p.bound {
						t.Errorf("bound invariant violated: held snapshot ts=%d below bound=%d and not in scanned set (|set|=%d)",
							s.TS(), p.bound, len(p.set))
						s.Release()
						return
					}
					checks.Add(1)
				}
				s.Release()
			}
		}()
	}

	time.Sleep(duration)
	close(stop)
	wg.Wait()
	if checks.Load() == 0 {
		t.Fatal("stress ran without performing a single invariant check")
	}
	t.Logf("checked %d snapshots against concurrent scans", checks.Load())
}

type nopStressRecord struct{}

func (r *nopStressRecord) InstallImage([]byte) {}
func (r *nopStressRecord) DropRecord()         {}
func (r *nopStressRecord) SetVersioned(bool)   {}
