//go:build !race

package txn

// raceEnabled gates the zero-alloc pins; see race_on_test.go.
const raceEnabled = false
