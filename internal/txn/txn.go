package txn

import (
	"sync/atomic"

	"hybridgc/internal/mvcc"
	"hybridgc/internal/ts"
)

// state of a transaction.
type txnState int32

const (
	stateActive txnState = iota
	stateCommitted
	stateAborted
)

// Txn is one transaction. Under Trans-SI it owns a snapshot from begin to
// end; under Stmt-SI the engine acquires a fresh snapshot per statement and
// the transaction only scopes writes and commit/abort.
type Txn struct {
	m        *Manager
	id       uint64
	iso      Isolation
	snap     *Snapshot
	declared []ts.TableID

	tctx  *mvcc.TransContext
	state atomic.Int32
}

// Begin starts a transaction. declared lists the tables a Trans-SI
// transaction promises to access (HANA's declared-table API, which makes the
// transaction's snapshot eligible for table GC); pass nil when unknown.
// Stmt-SI transactions take no snapshot here.
func (m *Manager) Begin(iso Isolation, declared []ts.TableID) *Txn {
	t := &Txn{
		m:        m,
		id:       m.nextTxnID.Add(1),
		iso:      iso,
		declared: append([]ts.TableID(nil), declared...),
	}
	if iso == TransSI {
		t.snap = m.AcquireSnapshot(KindTransaction, declared)
	}
	return t
}

// ID returns the transaction identifier.
func (t *Txn) ID() uint64 { return t.id }

// Isolation returns the transaction's isolation variant.
func (t *Txn) Isolation() Isolation { return t.iso }

// Snapshot returns the transaction snapshot (Trans-SI), or nil under
// Stmt-SI.
func (t *Txn) Snapshot() *Snapshot { return t.snap }

// Declared returns the declared table scope, or nil.
func (t *Txn) Declared() []ts.TableID { return t.declared }

// Active reports whether the transaction can still read and write.
func (t *Txn) Active() bool { return txnState(t.state.Load()) == stateActive }

// Context lazily creates the transaction's TransContext on first write
// ("when a transaction issues a write operation for the first time, it
// creates a TransContext object", §2.2).
func (t *Txn) Context() *mvcc.TransContext {
	if t.tctx == nil {
		t.tctx = mvcc.NewTransContext(t.id)
	}
	return t.tctx
}

// MaybeContext returns the TransContext if the transaction has written
// anything, without creating one. Readers use it for own-write visibility.
func (t *Txn) MaybeContext() *mvcc.TransContext { return t.tctx }

// WroteAnything reports whether the transaction created any versions.
func (t *Txn) WroteAnything() bool {
	return t.tctx != nil && t.tctx.VersionCount() > 0
}

// ConflictCheck returns the write-write conflict predicate the engine runs
// under the chain latch before linking a new version:
//
//   - an uncommitted head owned by another transaction always conflicts;
//   - under Trans-SI, a head committed after the transaction's snapshot
//     conflicts (first-committer-wins under snapshot isolation);
//   - under Stmt-SI, writes apply on top of the latest committed version.
func (t *Txn) ConflictCheck() func(head *mvcc.Version) error {
	return func(head *mvcc.Version) error {
		if head == nil {
			return nil
		}
		if !head.Committed() {
			if head.TransContext() == t.tctx && t.tctx != nil {
				return nil // our own earlier write
			}
			return ErrWriteConflict
		}
		if t.iso == TransSI && head.CID() > t.snap.TS() {
			return ErrWriteConflict
		}
		return nil
	}
}

// Commit finishes the transaction. Read-only transactions just release their
// snapshot; writers enter group commit and block until their group's CID is
// assigned. Returns the commit identifier (ts.Invalid for read-only).
func (t *Txn) Commit() (ts.CID, error) {
	if !t.state.CompareAndSwap(int32(stateActive), int32(stateCommitted)) {
		return ts.Invalid, ErrNotActive
	}
	if !t.WroteAnything() {
		t.releaseSnapshot()
		return ts.Invalid, nil
	}
	req := getCommitReq(t.tctx)
	if err := t.m.submit(req); err != nil {
		putCommitReq(req)
		t.state.Store(int32(stateAborted))
		t.undo()
		t.releaseSnapshot()
		return ts.Invalid, err
	}
	// Every submitted request is answered: Close bars new senders before
	// signalling the committer, whose final drain fails what remains queued.
	res := <-req.done
	putCommitReq(req)
	if res.err != nil {
		t.state.Store(int32(stateAborted))
		t.undo()
		t.releaseSnapshot()
		return ts.Invalid, res.err
	}
	// The snapshot is released only after the commit is durable in the
	// version space, so under Trans-SI the tracker reflects the paper's
	// observation that the timestamp is reclaimed at transaction end.
	t.releaseSnapshot()
	return res.cid, nil
}

// Abort rolls back every version the transaction created and releases its
// snapshot. Aborting a finished transaction is a no-op.
func (t *Txn) Abort() {
	if !t.state.CompareAndSwap(int32(stateActive), int32(stateAborted)) {
		return
	}
	t.undo()
	t.releaseSnapshot()
	t.m.txnsAborted.Add(1)
}

// undo unlinks the transaction's versions newest-first.
func (t *Txn) undo() {
	if t.tctx == nil {
		return
	}
	vs := t.tctx.Versions()
	for i := len(vs) - 1; i >= 0; i-- {
		t.m.space.Rollback(vs[i])
	}
}

func (t *Txn) releaseSnapshot() {
	if t.snap != nil {
		t.snap.Release()
	}
}
