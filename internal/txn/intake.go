package txn

import "sync"

// commitIntake is the committer's sharded MPSC inbox. Producers append to
// one of several padded, independently-locked stripes (the stripe travels
// with the pooled commitReq, giving per-P affinity) and set a cap-1
// notification token; the single committer sweeps every stripe into one
// batch per wakeup. Compared to the old shared channel this removes the
// one-cell-at-a-time handoff and lets concurrent committers on different
// cores enqueue without touching the same cache line.
//
// Lost wakeups are impossible: a producer appends under its stripe mutex
// before offering the token, so whichever sweep consumes the token (this
// one or a later one) acquires that mutex afterwards and observes the
// request. A dropped offer means the token was already set, and the sweep
// that eventually takes it runs after the append for the same reason.
const (
	intakeStripes    = 8
	intakeStripeMask = intakeStripes - 1
)

type intakeStripe struct {
	mu   sync.Mutex
	reqs []*commitReq
	// Pad to keep neighbouring stripes off one cache line (mutex word +
	// slice header = 32 bytes on 64-bit).
	_ [96]byte
}

type commitIntake struct {
	stripes [intakeStripes]intakeStripe
	notify  chan struct{}
}

func (q *commitIntake) init() {
	q.notify = make(chan struct{}, 1)
}

// put enqueues one request and wakes the committer.
func (q *commitIntake) put(r *commitReq) {
	s := &q.stripes[r.stripe&intakeStripeMask]
	s.mu.Lock()
	s.reqs = append(s.reqs, r)
	s.mu.Unlock()
	select {
	case q.notify <- struct{}{}:
	default:
	}
}

// drain sweeps every stripe, in a fixed order, appending all queued requests
// to into (which is returned grown). Stripe buffers are cleared but keep
// their capacity, so a warmed-up committer sweep allocates nothing.
func (q *commitIntake) drain(into []*commitReq) []*commitReq {
	for i := range q.stripes {
		s := &q.stripes[i]
		s.mu.Lock()
		into = append(into, s.reqs...)
		for j := range s.reqs {
			s.reqs[j] = nil
		}
		s.reqs = s.reqs[:0]
		s.mu.Unlock()
	}
	return into
}
