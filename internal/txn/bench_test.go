package txn

import (
	"sync/atomic"
	"testing"

	"hybridgc/internal/mvcc"
	"hybridgc/internal/sts"
	"hybridgc/internal/ts"
)

// BenchmarkSnapshotAcquireStmtParallel measures the full statement-snapshot
// path — seqlock-validated timestamp read, slot-array announcement, striped
// monitor registration — under parallel load. The registry-layer comparison
// against the locked cost model lives in internal/sts
// (BenchmarkSnapshotAcquireParallel vs ...ParallelLocked).
func BenchmarkSnapshotAcquireStmtParallel(b *testing.B) {
	m := NewManager(mvcc.NewSpace(256), sts.NewRegistry(), Config{})
	defer m.Close()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			s := m.AcquireSnapshot(KindStatement, nil)
			s.Release()
		}
	})
}

// BenchmarkCommitParallel measures commit submission end to end under
// parallel writers: pooled request, sharded intake, one group commit per
// sweep, lock-free group-list publication. Each iteration commits one
// single-version transaction on a fresh RID (insert-like, no write-write
// conflicts).
func BenchmarkCommitParallel(b *testing.B) {
	m := NewManager(mvcc.NewSpace(1<<16), sts.NewRegistry(), Config{})
	defer m.Close()
	var rid atomic.Uint64
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		rec := &nopRecord{}
		for pb.Next() {
			txn := m.Begin(StmtSI, nil)
			v := mvcc.NewVersion(mvcc.OpInsert,
				ts.RecordKey{Table: 1, RID: ts.RID(rid.Add(1))},
				[]byte("img"), txn.Context())
			txn.Context().Add(v)
			if _, err := m.Space().Prepend(rec, v, txn.ConflictCheck()); err != nil {
				b.Fatal(err)
			}
			if _, err := txn.Commit(); err != nil {
				b.Fatal(err)
			}
		}
	})
}
