// Package profiling gives every hybridgc binary the same three profiling
// switches: -cpuprofile and -memprofile for offline pprof files, and
// -pprof-addr for the live net/http/pprof endpoint on long-running
// processes. The hot paths this repo optimizes (RID lookups, wire framing,
// group commit) were found and verified with exactly these hooks; baking
// them into the binaries keeps the measurement loop one flag away.
package profiling

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers the /debug/pprof handlers
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
)

// Flags holds the standard profiling flag values.
type Flags struct {
	CPUProfile string
	MemProfile string
	PprofAddr  string
}

// Register attaches the standard profiling flags to fs (use flag.CommandLine
// in main).
func (f *Flags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&f.MemProfile, "memprofile", "", "write a heap profile to this file on Stop")
	fs.StringVar(&f.PprofAddr, "pprof-addr", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
}

var (
	mu      sync.Mutex
	cpuFile *os.File
	memPath string
)

// Start begins whatever the flags ask for: CPU profiling to a file, and/or
// the pprof HTTP listener (bound synchronously so a bad address fails here,
// served in the background). Call Stop before the process exits; Stop is
// what materializes -memprofile.
func Start(f Flags) error {
	mu.Lock()
	defer mu.Unlock()
	if f.CPUProfile != "" {
		file, err := os.Create(f.CPUProfile)
		if err != nil {
			return fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(file); err != nil {
			file.Close()
			return fmt.Errorf("profiling: %w", err)
		}
		cpuFile = file
	}
	memPath = f.MemProfile
	if f.PprofAddr != "" {
		ln, err := net.Listen("tcp", f.PprofAddr)
		if err != nil {
			return fmt.Errorf("profiling: pprof listener: %w", err)
		}
		fmt.Fprintf(os.Stderr, "pprof: http://%s/debug/pprof/\n", ln.Addr())
		go func() { _ = http.Serve(ln, nil) }()
	}
	return nil
}

// Stop finalizes profiling: the CPU profile is flushed and closed, and the
// heap profile (if requested) is written after a GC so it reflects live
// objects, not garbage. Idempotent, and a no-op without a prior Start — safe
// to call from both a defer and a fatal-exit helper.
func Stop() {
	mu.Lock()
	defer mu.Unlock()
	if cpuFile != nil {
		pprof.StopCPUProfile()
		cpuFile.Close()
		cpuFile = nil
	}
	if memPath != "" {
		path := memPath
		memPath = ""
		file, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "profiling:", err)
			return
		}
		runtime.GC()
		if err := pprof.Lookup("heap").WriteTo(file, 0); err != nil {
			fmt.Fprintln(os.Stderr, "profiling:", err)
		}
		file.Close()
	}
}
