package gc

import (
	"time"

	"hybridgc/internal/mvcc"
	"hybridgc/internal/txn"
)

// SingleTimestamp (ST) is the conventional garbage collector every surveyed
// system in §6.1 implements: it visits every version chain through the RID
// hash table and reclaims, per chain, all committed versions below the
// global minimum snapshot timestamp — keeping the newest of them only as the
// migrated table-space image. It exists as the taxonomy baseline; HANA's
// production collector is the group variant below.
type SingleTimestamp struct {
	m      *txn.Manager
	Totals Totals
}

// NewSingleTimestamp returns an ST collector over m.
func NewSingleTimestamp(m *txn.Manager) *SingleTimestamp {
	return &SingleTimestamp{m: m}
}

// Name implements Collector.
func (c *SingleTimestamp) Name() string { return "ST" }

// Collect implements Collector by scanning the whole RID hash table.
func (c *SingleTimestamp) Collect() RunStats {
	start := time.Now()
	min := c.m.GlobalHorizon()
	st := RunStats{Collector: c.Name(), Horizon: min}
	space := c.m.Space()
	space.HT.ForEach(func(ch *mvcc.Chain) bool {
		st.ChainsScanned++
		res := space.ReclaimBelow(ch, min)
		st.Versions += int64(res.Versions)
		if res.Migrated {
			st.Migrated++
		}
		if res.Dropped {
			st.Dropped++
		}
		if res.Emptied {
			st.ChainsEmptied++
		}
		return true
	})
	// ST identifies garbage per chain, but fully drained groups can still be
	// unlinked from the group list to bound its growth.
	st.Groups = pruneDrainedGroups(space)
	st.Duration = time.Since(start)
	c.Totals.record(st)
	return st
}

// GroupTimestamp (GT) is the global group garbage collector of §4.1: it
// walks the ordered GroupCommitContext list from the oldest CID and, for
// every group entirely below the minimum snapshot timestamp, reclaims the
// group's versions as a whole and unlinks the group. It stops at the first
// group at or above the minimum, so identification cost is proportional to
// the garbage found, not to the version space.
//
// The horizon considers the per-table trackers as well as the global tracker
// (§4.4), so GT stays correct when the table collector has moved snapshots.
type GroupTimestamp struct {
	m      *txn.Manager
	Totals Totals
}

// NewGroupTimestamp returns a GT collector over m.
func NewGroupTimestamp(m *txn.Manager) *GroupTimestamp {
	return &GroupTimestamp{m: m}
}

// Name implements Collector.
func (c *GroupTimestamp) Name() string { return "GT" }

// Collect implements Collector.
func (c *GroupTimestamp) Collect() RunStats {
	start := time.Now()
	min := c.m.GlobalHorizon()
	st := RunStats{Collector: c.Name(), Horizon: min}
	space := c.m.Space()
	space.Groups.Ascending(func(g *mvcc.GroupCommitContext) bool {
		if g.CID() >= min {
			return false // list is CID-ordered: iteration finishes here
		}
		for _, v := range g.Versions() {
			if v.Reclaimed() {
				continue
			}
			st.ChainsScanned++
			res := space.ReclaimBelow(v.Chain(), min)
			st.Versions += int64(res.Versions)
			if res.Migrated {
				st.Migrated++
			}
			if res.Dropped {
				st.Dropped++
			}
			if res.Emptied {
				st.ChainsEmptied++
			}
		}
		space.Groups.Remove(g)
		st.Groups++
		return true
	})
	st.Duration = time.Since(start)
	c.Totals.record(st)
	return st
}

// pruneDrainedGroups removes groups whose versions were all reclaimed by
// other collectors, stopping at the first group that still holds live
// versions (list order keeps the scan cheap).
func pruneDrainedGroups(space *mvcc.Space) int64 {
	var removed int64
	space.Groups.Ascending(func(g *mvcc.GroupCommitContext) bool {
		for _, v := range g.Versions() {
			if !v.Reclaimed() {
				return false
			}
		}
		space.Groups.Remove(g)
		removed++
		return true
	})
	return removed
}
