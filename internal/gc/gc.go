// Package gc implements the paper's garbage collector taxonomy (§3, Figure
// 3) and the HybridGC of §4.4:
//
//   - ST — single-version, timestamp-based: the conventional collector that
//     scans every version chain against the global minimum snapshot
//     timestamp.
//   - GT — group, timestamp-based: scans the ordered GroupCommitContext list
//     and reclaims whole groups below the minimum (§4.1).
//   - SI — single-version, interval-based: reclaims versions whose visible
//     interval contains no active snapshot timestamp, via the merge-based
//     Algorithm 1 (§3.1, §4.2).
//   - GI — group, interval-based: the immediate-successor-subgroup variant
//     the paper describes in §3.2 and leaves as future work; implemented
//     here as an extension.
//   - TG — table GC: the semantic optimization of §4.3 that moves long-lived
//     snapshots with known table scope to per-table trackers and reclaims
//     with per-table horizons.
//   - Hybrid — GT, TG and SI on independent invocation periods (§4.4).
package gc

import (
	"fmt"
	"sync/atomic"
	"time"

	"hybridgc/internal/ts"
)

// RunStats reports what a single collector invocation accomplished.
type RunStats struct {
	Collector string
	// Versions is the number of record versions reclaimed.
	Versions int64
	// Groups is the number of GroupCommitContext objects removed.
	Groups int64
	// ChainsScanned counts version chains examined.
	ChainsScanned int64
	// ChainsEmptied counts chains removed from the RID hash table.
	ChainsEmptied int64
	// Migrated counts record images moved into the table space.
	Migrated int64
	// Dropped counts records deleted from the table space (migrated DELETEs).
	Dropped int64
	// SnapshotsScoped counts snapshots the table collector moved to
	// per-table trackers during this run.
	SnapshotsScoped int64
	// Horizon is the reclamation horizon the run used (collector-specific).
	Horizon ts.CID
	// Duration is the wall time of the run.
	Duration time.Duration
}

// add folds another run into the receiver.
func (r *RunStats) add(o RunStats) {
	r.Versions += o.Versions
	r.Groups += o.Groups
	r.ChainsScanned += o.ChainsScanned
	r.ChainsEmptied += o.ChainsEmptied
	r.Migrated += o.Migrated
	r.Dropped += o.Dropped
	r.SnapshotsScoped += o.SnapshotsScoped
	r.Duration += o.Duration
}

// String implements fmt.Stringer.
func (r RunStats) String() string {
	return fmt.Sprintf("%s: versions=%d groups=%d chains=%d emptied=%d migrated=%d dropped=%d scoped=%d horizon=%d in %v",
		r.Collector, r.Versions, r.Groups, r.ChainsScanned, r.ChainsEmptied,
		r.Migrated, r.Dropped, r.SnapshotsScoped, r.Horizon, r.Duration)
}

// Collector is one garbage collection strategy. Collect performs a full
// identification-and-reclamation pass and returns what it did; collectors
// are safe for use by one invoker at a time (the Hybrid scheduler
// serializes them).
type Collector interface {
	Name() string
	Collect() RunStats
}

// Totals accumulates per-collector lifetime counters, the data behind
// Figure 11 (accumulated versions reclaimed per collector under HG).
type Totals struct {
	versions atomic.Int64
	runs     atomic.Int64
}

// Versions returns the lifetime reclaimed-version count.
func (t *Totals) Versions() int64 { return t.versions.Load() }

// Runs returns the lifetime invocation count.
func (t *Totals) Runs() int64 { return t.runs.Load() }

func (t *Totals) record(r RunStats) {
	t.versions.Add(r.Versions)
	t.runs.Add(1)
}
