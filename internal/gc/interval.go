package gc

import (
	"time"

	"hybridgc/internal/mvcc"
	"hybridgc/internal/ts"
	"hybridgc/internal/txn"
)

// Interval (SI) is the interval garbage collector of §4.2. It retrieves the
// full ordered set S of active snapshot timestamps, finds the
// GroupCommitContext objects whose CIDs lie strictly between min(S) and
// max(S), walks the version chains reachable from them highest-CID-first,
// and reclaims every version whose visible interval contains no element of
// S using the merge-based Algorithm 1. This collects versions in the middle
// of chains that a long-lived snapshot would otherwise pin forever.
//
// With TableAware set, S is narrowed per chain to the snapshots that can
// actually reach the chain's table (global tracker plus that table's
// tracker) — a finer-grained extension of the paper's pre-materialized
// union, which the default mode uses.
//
// FromHashTable selects the alternative implementation §4.2 mentions:
// reaching the version chains from the RID hash table instead of from the
// GroupCommitContext list, "which is more useful when we need to logically
// partition the version space to execute the interval garbage collector by
// multiple threads in parallel". Parallelism > 1 splits the chain set
// across that many goroutines (§4.4's parallel execution).
type Interval struct {
	m *txn.Manager
	// TableAware narrows the snapshot set per table instead of using the
	// union of all trackers.
	TableAware bool
	// FromHashTable scans every registered chain instead of only chains
	// reachable from groups in the (min(S), bound] window.
	FromHashTable bool
	// Parallelism is the number of reclamation goroutines; <=1 runs serial.
	Parallelism int
	Totals      Totals
}

// NewInterval returns an SI collector over m.
func NewInterval(m *txn.Manager) *Interval {
	return &Interval{m: m}
}

// Name implements Collector.
func (c *Interval) Name() string { return "SI" }

// Collect implements Collector.
func (c *Interval) Collect() RunStats {
	start := time.Now()
	st := RunStats{Collector: c.Name()}
	// Step 1: retrieve the full active snapshot timestamp set, atomically
	// with the commit timestamp that bounds how far interval reclamation may
	// reach (§4.2 bounds by max(S); the commit-timestamp bound collects
	// strictly more and stays safe because snapshots registered after this
	// point cannot sit below it).
	snaps, bound := c.m.SnapshotSetAndBound()
	if len(snaps) < 1 {
		// No active snapshot: the timestamp collectors reclaim everything;
		// there is no interval work.
		st.Duration = time.Since(start)
		c.Totals.record(st)
		return st
	}
	minS := snaps[0]
	st.Horizon = bound
	space := c.m.Space()

	// Step 2+3: gather the chains to inspect — either every chain reachable
	// from groups with min(S) < CID <= bound (highest-CID-first,
	// deduplicated), or, in FromHashTable mode, every registered chain.
	var chains []*mvcc.Chain
	if c.FromHashTable {
		space.HT.ForEach(func(ch *mvcc.Chain) bool {
			chains = append(chains, ch)
			return true
		})
	} else {
		seen := make(map[*mvcc.Chain]struct{})
		space.Groups.Descending(func(g *mvcc.GroupCommitContext) bool {
			cid := g.CID()
			if cid > bound {
				return true // newer than the window; keep descending
			}
			if cid <= minS {
				return false // below the window; the ordered list is done
			}
			for _, v := range g.Versions() {
				if v.Reclaimed() {
					continue
				}
				ch := v.Chain()
				if _, dup := seen[ch]; !dup {
					seen[ch] = struct{}{}
					chains = append(chains, ch)
				}
			}
			return true
		})
	}

	// Step 4: per chain, reclaim the versions whose visible interval
	// intersects no snapshot (Algorithm 1 runs inside ReclaimIntervals),
	// optionally across several goroutines over disjoint chain partitions.
	reclaimPart := func(part []*mvcc.Chain) (versions, scanned int64) {
		for _, ch := range part {
			scanned++
			s := snaps
			if c.TableAware {
				s = c.m.Registry().SnapshotFor(ch.Key.Table)
			}
			versions += int64(space.ReclaimIntervals(ch, s, bound))
		}
		return versions, scanned
	}
	if p := c.Parallelism; p > 1 && len(chains) > 1 {
		if p > len(chains) {
			p = len(chains)
		}
		type partRes struct{ versions, scanned int64 }
		results := make(chan partRes, p)
		per := (len(chains) + p - 1) / p
		for i := 0; i < len(chains); i += per {
			end := i + per
			if end > len(chains) {
				end = len(chains)
			}
			go func(part []*mvcc.Chain) {
				v, s := reclaimPart(part)
				results <- partRes{v, s}
			}(chains[i:end])
		}
		for i := 0; i < (len(chains)+per-1)/per; i++ {
			r := <-results
			st.Versions += r.versions
			st.ChainsScanned += r.scanned
		}
	} else {
		v, s := reclaimPart(chains)
		st.Versions += v
		st.ChainsScanned += s
	}
	st.Groups = pruneDrainedGroups(space)
	st.Duration = time.Since(start)
	c.Totals.record(st)
	return st
}

// GroupInterval (GI) is the group interval collector of §3.2, which the
// paper describes via immediate-successor subgroups and leaves unimplemented
// in HANA ("an interesting future topic of research"). This implementation
// realizes it as follows: within the (min(S), max(S)) window, the versions
// of each group G are partitioned by the CID of their immediate committed
// successor; each subgroup shares one visible interval [cid(G), succCID), so
// one LGN probe against S decides the whole subgroup. Decisions are memoized
// per (CID, successor-CID) pair, which is the batching that distinguishes GI
// from SI.
type GroupInterval struct {
	m      *txn.Manager
	Totals Totals
}

// NewGroupInterval returns a GI collector over m.
func NewGroupInterval(m *txn.Manager) *GroupInterval {
	return &GroupInterval{m: m}
}

// Name implements Collector.
func (c *GroupInterval) Name() string { return "GI" }

// Collect implements Collector.
func (c *GroupInterval) Collect() RunStats {
	start := time.Now()
	st := RunStats{Collector: c.Name()}
	snaps, bound := c.m.SnapshotSetAndBound()
	if len(snaps) < 1 {
		st.Duration = time.Since(start)
		c.Totals.record(st)
		return st
	}
	minS := snaps[0]
	st.Horizon = bound
	space := c.m.Space()

	type ivKey struct{ self, succ ts.CID }
	memo := make(map[ivKey]bool)
	decide := func(self, succ ts.CID) bool {
		if succ > bound {
			return false
		}
		k := ivKey{self, succ}
		if g, ok := memo[k]; ok {
			return g
		}
		// The subgroup's interval [self, succ) is garbage iff no snapshot
		// lies inside it: succ <= LGN(self, S).
		g := succ <= ts.LGN(self, snaps)
		memo[k] = g
		return g
	}

	space.Groups.Descending(func(g *mvcc.GroupCommitContext) bool {
		cid := g.CID()
		if cid > bound {
			return true
		}
		if cid <= minS {
			return false
		}
		st.ChainsScanned++
		for _, v := range g.Versions() {
			if v.Reclaimed() {
				continue
			}
			if space.ReclaimVersionIf(v, decide) {
				st.Versions++
			}
		}
		return true
	})
	st.Groups = pruneDrainedGroups(space)
	st.Duration = time.Since(start)
	c.Totals.record(st)
	return st
}
