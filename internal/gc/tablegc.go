package gc

import (
	"time"

	"hybridgc/internal/mvcc"
	"hybridgc/internal/ts"
	"hybridgc/internal/txn"
)

// DefaultLongLivedThreshold is the age past which a snapshot counts as
// long-lived for the table collector when no threshold is configured.
const DefaultLongLivedThreshold = 500 * time.Millisecond

// TableGC is the table garbage collector of §4.3, the semantic optimization:
//
//  1. it discovers long-lived snapshots whose complete table scope is known
//     a priori (always under Stmt-SI; under Trans-SI for declared-table
//     transactions and precompiled procedures) via the system monitor;
//  2. it moves their snapshot timestamps from the global STS tracker to the
//     per-table STS trackers of their scope tables;
//  3. it reclaims versions with per-table horizons, so a long-lived OLAP
//     snapshot over one table no longer blocks reclamation of every other
//     table.
//
// The group list scan is bounded by the minimum of the *global* tracker
// (region B of Figure 9); each version's reclamation horizon is its own
// table's effective minimum.
// PartitionResolver maps a record to its partition, when its table is
// partitioned. The engine wires its catalog in; a nil resolver (or a false
// return) keeps the collector at table granularity.
type PartitionResolver func(ts.RecordKey) (ts.PartitionID, bool)

type TableGC struct {
	m *txn.Manager
	// Threshold is the long-lived snapshot age cutoff.
	Threshold time.Duration
	// Resolver enables the partition-level semantic optimization of §4.3:
	// snapshots with declared partition scopes move to per-partition
	// trackers, and versions are reclaimed against their own partition's
	// horizon.
	Resolver PartitionResolver
	Totals   Totals
}

// NewTableGC returns a TG collector with the given long-lived threshold
// (<=0 selects DefaultLongLivedThreshold).
func NewTableGC(m *txn.Manager, threshold time.Duration) *TableGC {
	if threshold <= 0 {
		threshold = DefaultLongLivedThreshold
	}
	return &TableGC{m: m, Threshold: threshold}
}

// Name implements Collector.
func (c *TableGC) Name() string { return "TG" }

// Collect implements Collector.
func (c *TableGC) Collect() RunStats {
	start := time.Now()
	st := RunStats{Collector: c.Name()}

	// Steps 1+2: classify long-lived snapshots and move their timestamps to
	// per-table (or, when the plan's partition pruning is known,
	// per-partition) trackers.
	for _, s := range c.m.Monitor().LongLived(c.Threshold) {
		if tid, parts, ok := s.PartitionScope(); ok {
			if s.Handle().ScopeToPartitions(tid, parts) {
				st.SnapshotsScoped++
			}
			continue
		}
		if s.Handle().ScopeToTables(s.Scope()) {
			st.SnapshotsScoped++
		}
	}

	// Step 3: reclaim with per-table minimums. Scan groups up to the global
	// tracker's minimum — versions beyond it are pinned globally anyway.
	bound := c.globalTrackerBound()
	st.Horizon = bound
	space := c.m.Space()
	// Per-table and per-partition horizons are stable during the pass;
	// cache them.
	tblHorizons := make(map[ts.TableID]ts.CID)
	partHorizons := make(map[ts.PartKey]ts.CID)
	horizonFor := func(key ts.RecordKey) ts.CID {
		if c.Resolver != nil {
			if p, ok := c.Resolver(key); ok {
				pk := ts.PartKey{Table: key.Table, Partition: p}
				h, cached := partHorizons[pk]
				if !cached {
					h = c.m.PartitionHorizon(key.Table, p)
					partHorizons[pk] = h
				}
				return h
			}
		}
		h, cached := tblHorizons[key.Table]
		if !cached {
			h = c.m.TableHorizon(key.Table)
			tblHorizons[key.Table] = h
		}
		return h
	}
	space.Groups.Ascending(func(g *mvcc.GroupCommitContext) bool {
		cid := g.CID()
		if cid >= bound {
			return false
		}
		drained := true
		for _, v := range g.Versions() {
			if v.Reclaimed() {
				continue
			}
			min := horizonFor(v.Key)
			if cid >= min {
				drained = false
				continue
			}
			st.ChainsScanned++
			res := space.ReclaimBelow(v.Chain(), min)
			st.Versions += int64(res.Versions)
			if res.Migrated {
				st.Migrated++
			}
			if res.Dropped {
				st.Dropped++
			}
			if res.Emptied {
				st.ChainsEmptied++
			}
			if !v.Reclaimed() {
				drained = false
			}
		}
		if drained {
			space.Groups.Remove(g)
			st.Groups++
		}
		return true
	})
	st.Duration = time.Since(start)
	c.Totals.record(st)
	return st
}

// globalTrackerBound returns the minimum over unscoped (not table-scoped)
// snapshot announcements, or everything-committed when there are none.
func (c *TableGC) globalTrackerBound() ts.CID {
	return c.m.GlobalTrackerHorizon()
}
