package gc

import (
	"fmt"

	"hybridgc/internal/mvcc"
	"hybridgc/internal/txn"
)

// Regions quantifies Figure 9's partitioning of the version space by which
// HybridGC member can reclaim each part:
//
//   - A — versions in commit groups below the union minimum snapshot
//     timestamp: the global group collector reclaims these at once;
//   - B — versions between the union minimum and the global tracker's
//     minimum: pinned only by table-/partition-scoped snapshots, the table
//     collector's region;
//   - C — versions at or above the global tracker's minimum: only the
//     interval collector can find garbage here.
type Regions struct {
	A int64
	B int64
	C int64
	// UnionMin and GlobalMin are the two horizons that delimit the regions.
	UnionMin  uint64
	GlobalMin uint64
}

// Total returns the live versions accounted across regions.
func (r Regions) Total() int64 { return r.A + r.B + r.C }

// String implements fmt.Stringer.
func (r Regions) String() string {
	return fmt.Sprintf("A(GT)=%d B(TG)=%d C(SI)=%d [unionMin=%d globalMin=%d]",
		r.A, r.B, r.C, r.UnionMin, r.GlobalMin)
}

// CurrentRegions walks the commit-group list and classifies every live
// version into its Figure 9 region. It is a diagnostic: the scan takes the
// same locks the collectors take and is priced accordingly.
func CurrentRegions(m *txn.Manager) Regions {
	unionMin := m.GlobalHorizon()
	globalMin := m.GlobalTrackerHorizon()
	r := Regions{UnionMin: uint64(unionMin), GlobalMin: uint64(globalMin)}
	m.Space().Groups.Ascending(func(g *mvcc.GroupCommitContext) bool {
		cid := g.CID()
		var live int64
		for _, v := range g.Versions() {
			if !v.Reclaimed() {
				live++
			}
		}
		switch {
		case cid < unionMin:
			r.A += live
		case cid < globalMin:
			r.B += live
		default:
			r.C += live
		}
		return true
	})
	return r
}
