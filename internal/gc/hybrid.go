package gc

import (
	"sync"
	"time"

	"hybridgc/internal/txn"
)

// Periods configures the independent invocation periods of the three
// collectors HybridGC combines (§4.4). A zero period disables that
// collector. The paper's defaults are 1 s for GT, 3 s for TG and 10 s for
// SI; experiments time-compress these.
type Periods struct {
	GT time.Duration
	TG time.Duration
	SI time.Duration
}

// DefaultPeriods mirrors the paper's configuration at 1/10 time scale so
// laptop-scale runs exercise the same ratios.
func DefaultPeriods() Periods {
	return Periods{GT: 100 * time.Millisecond, TG: 300 * time.Millisecond, SI: time.Second}
}

// Hybrid is the HybridGC of §4.4: the global group collector (GT), the table
// collector (TG) and the interval collector (SI) invoked independently, each
// with its own period. When TG or SI fires it internally executes GT first,
// then handles the remainder, exactly as the paper specifies. Collections
// are serialized on one latch; versions are reclaimed concurrently with
// transaction processing.
type Hybrid struct {
	GT *GroupTimestamp
	TG *TableGC
	SI *Interval

	periods Periods

	mu      sync.Mutex // serializes collector passes
	startMu sync.Mutex
	stop    chan struct{}
	wg      sync.WaitGroup
	running bool
}

// NewHybrid builds a HybridGC over m. threshold is TG's long-lived snapshot
// cutoff (<=0 picks the default).
func NewHybrid(m *txn.Manager, periods Periods, threshold time.Duration) *Hybrid {
	return &Hybrid{
		GT:      NewGroupTimestamp(m),
		TG:      NewTableGC(m, threshold),
		SI:      NewInterval(m),
		periods: periods,
	}
}

// Name implements Collector.
func (h *Hybrid) Name() string { return "HG" }

// Collect implements Collector: one full hybrid pass, GT then TG then SI —
// the execution order of §4.4 — regardless of periods. Used by tests and by
// callers that drive collection manually.
func (h *Hybrid) Collect() RunStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := h.GT.Collect()
	st.Collector = h.Name()
	st.add(h.TG.Collect())
	st.add(h.SI.Collect())
	return st
}

// RunGT runs only the group collector.
func (h *Hybrid) RunGT() RunStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.GT.Collect()
}

// RunTG runs the table collector, preceded by the group collector as §4.4
// prescribes ("when the table garbage collector or the interval garbage
// collector is invoked, it internally executes the global group garbage
// collector first").
func (h *Hybrid) RunTG() RunStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.GT.Collect()
	return h.TG.Collect()
}

// RunSI runs the interval collector, preceded by the group collector.
func (h *Hybrid) RunSI() RunStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.GT.Collect()
	return h.SI.Collect()
}

// Start launches the periodic invocations. Collectors with a zero period
// stay disabled. Start is idempotent while running.
func (h *Hybrid) Start() {
	h.startMu.Lock()
	defer h.startMu.Unlock()
	if h.running {
		return
	}
	h.running = true
	h.stop = make(chan struct{})
	launch := func(period time.Duration, run func() RunStats) {
		if period <= 0 {
			return
		}
		h.wg.Add(1)
		go func() {
			defer h.wg.Done()
			tick := time.NewTicker(period)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					run()
				case <-h.stop:
					return
				}
			}
		}()
	}
	launch(h.periods.GT, h.RunGT)
	launch(h.periods.TG, h.RunTG)
	launch(h.periods.SI, h.RunSI)
}

// Stop halts the periodic invocations and waits for in-flight passes.
func (h *Hybrid) Stop() {
	h.startMu.Lock()
	defer h.startMu.Unlock()
	if !h.running {
		return
	}
	close(h.stop)
	h.wg.Wait()
	h.running = false
}

// ReclaimedByGT returns GT's lifetime reclaimed-version count (Figure 11).
func (h *Hybrid) ReclaimedByGT() int64 { return h.GT.Totals.Versions() }

// ReclaimedByTG returns TG's lifetime reclaimed-version count (Figure 11).
func (h *Hybrid) ReclaimedByTG() int64 { return h.TG.Totals.Versions() }

// ReclaimedBySI returns SI's lifetime reclaimed-version count (Figure 11).
func (h *Hybrid) ReclaimedBySI() int64 { return h.SI.Totals.Versions() }
