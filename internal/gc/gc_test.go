package gc

import (
	"fmt"
	"testing"
	"time"

	"hybridgc/internal/mvcc"
	"hybridgc/internal/sts"
	"hybridgc/internal/table"
	"hybridgc/internal/ts"
	"hybridgc/internal/txn"
)

// env wires a catalog, version space and transaction manager the way the
// engine does, so collectors are tested against the real write path.
type env struct {
	t     *testing.T
	cat   *table.Catalog
	space *mvcc.Space
	m     *txn.Manager
}

func newEnv(t *testing.T) *env {
	t.Helper()
	space := mvcc.NewSpace(1 << 10)
	m := txn.NewManager(space, sts.NewRegistry(), txn.Config{SynchronousPropagation: true})
	t.Cleanup(m.Close)
	return &env{t: t, cat: table.NewCatalog(), space: space, m: m}
}

func (e *env) createTable(name string) *table.Table {
	tbl, err := e.cat.Create(name)
	if err != nil {
		e.t.Fatal(err)
	}
	return tbl
}

func (e *env) write(op mvcc.OpType, tbl *table.Table, rid ts.RID, img string) ts.RID {
	e.t.Helper()
	tx := e.m.Begin(txn.StmtSI, nil)
	var rec *table.Record
	if op == mvcc.OpInsert {
		rid = tbl.AllocRID()
		var err error
		rec, err = tbl.CreateRecord(rid)
		if err != nil {
			e.t.Fatal(err)
		}
	} else {
		rec = tbl.Get(rid)
		if rec == nil {
			e.t.Fatalf("no record %d in %s", rid, tbl.Name)
		}
	}
	var payload []byte
	if op != mvcc.OpDelete {
		payload = []byte(img)
	}
	v := mvcc.NewVersion(op, ts.RecordKey{Table: tbl.ID, RID: rid}, payload, tx.Context())
	tx.Context().Add(v)
	if _, err := e.space.Prepend(rec, v, tx.ConflictCheck()); err != nil {
		e.t.Fatal(err)
	}
	if _, err := tx.Commit(); err != nil {
		e.t.Fatal(err)
	}
	return rid
}

func (e *env) insert(tbl *table.Table, img string) ts.RID {
	return e.write(mvcc.OpInsert, tbl, 0, img)
}

func (e *env) update(tbl *table.Table, rid ts.RID, img string) {
	e.write(mvcc.OpUpdate, tbl, rid, img)
}

// read resolves the record image visible at snapshot timestamp at, following
// the engine's read path: is_versioned flag, chain traversal, table-space
// fallback.
func (e *env) read(tbl *table.Table, rid ts.RID, at ts.CID) (string, bool) {
	rec := tbl.Get(rid)
	if rec == nil {
		return "", false
	}
	if rec.Versioned() {
		if ch := e.space.HT.Get(ts.RecordKey{Table: tbl.ID, RID: rid}); ch != nil {
			if v, _ := ch.Visible(at); v != nil {
				if v.Op == mvcc.OpDelete {
					return "", false
				}
				return string(v.Payload), true
			}
		}
	}
	img := rec.Image()
	if img == nil {
		return "", false
	}
	return string(img), true
}

func TestGTReclaimsWholeGroupsBelowHorizon(t *testing.T) {
	e := newEnv(t)
	tbl := e.createTable("T")
	rid := e.insert(tbl, "v0")
	for i := 1; i <= 4; i++ {
		e.update(tbl, rid, fmt.Sprintf("v%d", i))
	}
	if e.space.Live() != 5 {
		t.Fatalf("live = %d", e.space.Live())
	}
	gt := NewGroupTimestamp(e.m)
	st := gt.Collect()
	if st.Versions != 5 {
		t.Fatalf("reclaimed %d versions, want 5: %s", st.Versions, st)
	}
	if st.Groups != 5 {
		t.Fatalf("removed %d groups, want 5", st.Groups)
	}
	if e.space.Live() != 0 || e.space.Groups.Len() != 0 {
		t.Fatalf("live=%d groups=%d after full reclaim", e.space.Live(), e.space.Groups.Len())
	}
	// The latest image must have migrated to the table space.
	if img, ok := e.read(tbl, rid, e.m.CurrentTS()); !ok || img != "v4" {
		t.Fatalf("read after GC = %q,%v want v4", img, ok)
	}
	if gt.Totals.Versions() != 5 || gt.Totals.Runs() != 1 {
		t.Fatal("totals not recorded")
	}
}

func TestGTStopsAtPinnedSnapshot(t *testing.T) {
	e := newEnv(t)
	tbl := e.createTable("T")
	rid := e.insert(tbl, "v0")
	e.update(tbl, rid, "v1")
	long := e.m.AcquireSnapshot(txn.KindCursor, []ts.TableID{tbl.ID})
	defer long.Release()
	pin := long.TS()
	for i := 2; i <= 5; i++ {
		e.update(tbl, rid, fmt.Sprintf("v%d", i))
	}

	gt := NewGroupTimestamp(e.m)
	st := gt.Collect()
	// Only v0 is below the pin (v1 is the newest candidate and is the pinned
	// snapshot's visible image — it survives as the migrated boundary).
	if st.Horizon != pin {
		t.Fatalf("horizon = %d, want %d", st.Horizon, pin)
	}
	if img, ok := e.read(tbl, rid, pin); !ok || img != "v1" {
		t.Fatalf("pinned snapshot reads %q,%v, want v1", img, ok)
	}
	// Groups at or above the pin survive.
	if e.space.Groups.Len() == 0 {
		t.Fatal("pinned groups must survive")
	}
	live := e.space.Live()
	if live < 5 {
		t.Fatalf("live = %d; versions above the pin must survive", live)
	}
	// After release, everything collapses to the single migrated image.
	long.Release()
	gt.Collect()
	if e.space.Live() != 0 {
		t.Fatalf("live after release = %d", e.space.Live())
	}
	if img, ok := e.read(tbl, rid, e.m.CurrentTS()); !ok || img != "v5" {
		t.Fatalf("read = %q,%v want v5", img, ok)
	}
}

func TestSTMatchesGTOutcome(t *testing.T) {
	build := func() (*env, *table.Table, ts.RID) {
		e := newEnv(t)
		tbl := e.createTable("T")
		rid := e.insert(tbl, "v0")
		for i := 1; i <= 9; i++ {
			e.update(tbl, rid, fmt.Sprintf("v%d", i))
		}
		return e, tbl, rid
	}
	e1, _, _ := build()
	e2, _, _ := build()
	st1 := NewSingleTimestamp(e1.m).Collect()
	st2 := NewGroupTimestamp(e2.m).Collect()
	if st1.Versions != st2.Versions {
		t.Fatalf("ST reclaimed %d, GT %d — must match", st1.Versions, st2.Versions)
	}
	if e1.space.Live() != e2.space.Live() {
		t.Fatalf("live: ST %d vs GT %d", e1.space.Live(), e2.space.Live())
	}
}

func TestTableGCUnblocksOtherTables(t *testing.T) {
	e := newEnv(t)
	stock := e.createTable("STOCK")
	orders := e.createTable("ORDERS")
	sRID := e.insert(stock, "s0")
	oRID := e.insert(orders, "o0")

	// Long-lived cursor over STOCK only (scope known under Stmt-SI).
	long := e.m.AcquireSnapshot(txn.KindCursor, []ts.TableID{stock.ID})
	defer long.Release()
	pin := long.TS()

	for i := 1; i <= 5; i++ {
		e.update(stock, sRID, fmt.Sprintf("s%d", i))
		e.update(orders, oRID, fmt.Sprintf("o%d", i))
	}

	// GT alone is blocked by the cursor (only pre-pin versions go).
	gt := NewGroupTimestamp(e.m)
	gt.Collect()
	liveAfterGT := e.space.Live()
	if liveAfterGT < 10 {
		t.Fatalf("GT must be blocked by the cursor, live=%d", liveAfterGT)
	}

	// TG discovers the cursor (threshold 0 → immediately long-lived), scopes
	// it to STOCK, and reclaims the ORDERS versions.
	tg := NewTableGC(e.m, time.Nanosecond)
	time.Sleep(time.Millisecond)
	st := tg.Collect()
	if st.SnapshotsScoped != 1 {
		t.Fatalf("scoped %d snapshots, want 1", st.SnapshotsScoped)
	}
	if st.Versions == 0 {
		t.Fatal("TG must reclaim the other table's versions")
	}
	// ORDERS fully reclaimed to its newest image; STOCK still pinned.
	if img, ok := e.read(orders, oRID, e.m.CurrentTS()); !ok || img != "o5" {
		t.Fatalf("orders read = %q,%v", img, ok)
	}
	if img, ok := e.read(stock, sRID, pin); !ok || img != "s0" {
		t.Fatalf("pinned stock read = %q,%v, want s0", img, ok)
	}
	// STOCK chain must still hold the pinned history.
	stockChain := e.space.HT.Get(ts.RecordKey{Table: stock.ID, RID: sRID})
	if stockChain == nil || stockChain.Len() < 5 {
		t.Fatal("stock history must survive TG")
	}
	// After the cursor closes, a GT pass (horizon considers the now-empty
	// per-table tracker) drains the rest.
	long.Release()
	gt.Collect()
	if e.space.Live() != 0 {
		t.Fatalf("live after cursor close = %d", e.space.Live())
	}
}

func TestIntervalCollectsBehindPin(t *testing.T) {
	e := newEnv(t)
	tbl := e.createTable("T")
	rid := e.insert(tbl, "v0")
	long := e.m.AcquireSnapshot(txn.KindCursor, []ts.TableID{tbl.ID})
	defer long.Release()
	pin := long.TS()
	for i := 1; i <= 10; i++ {
		e.update(tbl, rid, fmt.Sprintf("v%d", i))
	}
	// A second snapshot at the current timestamp creates the upper window
	// bound, standing in for ongoing OLTP statements.
	cur := e.m.AcquireSnapshot(txn.KindStatement, nil)
	defer cur.Release()

	si := NewInterval(e.m)
	st := si.Collect()
	// Versions v1..v9 sit between the pin and the current snapshot with no
	// snapshot inside their intervals; all but the newest (v10) are interval
	// garbage.
	if st.Versions != 9 {
		t.Fatalf("SI reclaimed %d, want 9: %s", st.Versions, st)
	}
	// Both snapshots still read correctly.
	if img, ok := e.read(tbl, rid, pin); !ok || img != "v0" {
		t.Fatalf("pinned read = %q,%v want v0", img, ok)
	}
	if img, ok := e.read(tbl, rid, cur.TS()); !ok || img != "v10" {
		t.Fatalf("current read = %q,%v want v10", img, ok)
	}
	// Chain shrank to {v0, v10} (plus nothing else).
	ch := e.space.HT.Get(ts.RecordKey{Table: tbl.ID, RID: rid})
	if got := ch.Len(); got != 2 {
		t.Fatalf("chain length = %d, want 2", got)
	}
	// Idempotent.
	if st := si.Collect(); st.Versions != 0 {
		t.Fatalf("second SI pass reclaimed %d", st.Versions)
	}
}

func TestIntervalRespectsMiddleSnapshot(t *testing.T) {
	e := newEnv(t)
	tbl := e.createTable("T")
	rid := e.insert(tbl, "v0")
	long := e.m.AcquireSnapshot(txn.KindCursor, []ts.TableID{tbl.ID})
	defer long.Release()
	for i := 1; i <= 3; i++ {
		e.update(tbl, rid, fmt.Sprintf("v%d", i))
	}
	mid := e.m.AcquireSnapshot(txn.KindStatement, nil) // pins v3
	defer mid.Release()
	for i := 4; i <= 6; i++ {
		e.update(tbl, rid, fmt.Sprintf("v%d", i))
	}
	top := e.m.AcquireSnapshot(txn.KindStatement, nil)
	defer top.Release()

	midWant, _ := e.read(tbl, rid, mid.TS())
	NewInterval(e.m).Collect()
	if img, ok := e.read(tbl, rid, mid.TS()); !ok || img != midWant {
		t.Fatalf("middle snapshot read changed: %q vs %q", img, midWant)
	}
	if img, ok := e.read(tbl, rid, top.TS()); !ok || img != "v6" {
		t.Fatalf("top read = %q,%v", img, ok)
	}
}

func TestGroupIntervalMatchesInterval(t *testing.T) {
	build := func() (*env, *txn.Snapshot, *txn.Snapshot, *table.Table, ts.RID) {
		e := newEnv(t)
		tbl := e.createTable("T")
		rid := e.insert(tbl, "v0")
		long := e.m.AcquireSnapshot(txn.KindCursor, []ts.TableID{tbl.ID})
		for i := 1; i <= 8; i++ {
			e.update(tbl, rid, fmt.Sprintf("v%d", i))
		}
		cur := e.m.AcquireSnapshot(txn.KindStatement, nil)
		return e, long, cur, tbl, rid
	}
	e1, l1, c1, _, _ := build()
	e2, l2, c2, tbl2, rid2 := build()
	defer func() { l1.Release(); c1.Release(); l2.Release(); c2.Release() }()

	si := NewInterval(e1.m).Collect()
	gi := NewGroupInterval(e2.m).Collect()
	if si.Versions != gi.Versions {
		t.Fatalf("SI reclaimed %d, GI %d — same garbage set expected", si.Versions, gi.Versions)
	}
	// GI preserves reads too.
	if img, ok := e2.read(tbl2, rid2, l2.TS()); !ok || img != "v0" {
		t.Fatalf("GI pinned read = %q,%v", img, ok)
	}
	if img, ok := e2.read(tbl2, rid2, c2.TS()); !ok || img != "v8" {
		t.Fatalf("GI current read = %q,%v", img, ok)
	}
}

func TestHybridCombinesAll(t *testing.T) {
	e := newEnv(t)
	stock := e.createTable("STOCK")
	orders := e.createTable("ORDERS")
	sRID := e.insert(stock, "s0")
	oRID := e.insert(orders, "o0")
	long := e.m.AcquireSnapshot(txn.KindCursor, []ts.TableID{stock.ID})
	defer long.Release()
	for i := 1; i <= 6; i++ {
		e.update(stock, sRID, fmt.Sprintf("s%d", i))
		e.update(orders, oRID, fmt.Sprintf("o%d", i))
	}
	cur := e.m.AcquireSnapshot(txn.KindStatement, nil)
	defer cur.Release()

	h := NewHybrid(e.m, Periods{}, time.Nanosecond)
	time.Sleep(time.Millisecond)
	h.Collect()

	// Orders collapse via TG; stock keeps only the pinned boundary plus the
	// newest version thanks to SI.
	if img, ok := e.read(orders, oRID, e.m.CurrentTS()); !ok || img != "o6" {
		t.Fatalf("orders read = %q,%v", img, ok)
	}
	if img, ok := e.read(stock, sRID, long.TS()); !ok || img != "s0" {
		t.Fatalf("pinned stock read = %q,%v", img, ok)
	}
	if img, ok := e.read(stock, sRID, cur.TS()); !ok || img != "s6" {
		t.Fatalf("current stock read = %q,%v", img, ok)
	}
	// GT migrated s0 to the table space (the pin is at the o0 insert's CID,
	// above the s0 insert), and SI removed every intermediate version, so
	// only the newest stock version remains in the chain.
	stockChain := e.space.HT.Get(ts.RecordKey{Table: stock.ID, RID: sRID})
	if stockChain.Len() != 1 {
		t.Fatalf("stock chain length = %d, want 1 (newest only)", stockChain.Len())
	}
	if h.ReclaimedByTG() == 0 || h.ReclaimedBySI() == 0 {
		t.Fatalf("per-collector totals: GT=%d TG=%d SI=%d",
			h.ReclaimedByGT(), h.ReclaimedByTG(), h.ReclaimedBySI())
	}
}

func TestHybridScheduler(t *testing.T) {
	e := newEnv(t)
	tbl := e.createTable("T")
	rid := e.insert(tbl, "v0")
	h := NewHybrid(e.m, Periods{GT: 2 * time.Millisecond, TG: 5 * time.Millisecond, SI: 7 * time.Millisecond}, time.Millisecond)
	h.Start()
	h.Start() // idempotent
	for i := 1; i <= 50; i++ {
		e.update(tbl, rid, fmt.Sprintf("v%d", i))
		time.Sleep(300 * time.Microsecond)
	}
	deadline := time.Now().Add(time.Second)
	for e.space.Live() != 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	h.Stop()
	h.Stop() // idempotent
	if e.space.Live() != 0 {
		t.Fatalf("scheduler left %d live versions", e.space.Live())
	}
	if img, ok := e.read(tbl, rid, e.m.CurrentTS()); !ok || img != "v50" {
		t.Fatalf("read = %q,%v", img, ok)
	}
	if h.GT.Totals.Runs() == 0 {
		t.Fatal("GT never ran")
	}
}

// TestGCSafetyOracle runs a randomized history and checks, after every
// collector pass, that every active snapshot still reads exactly what it
// read before the pass — the fundamental safety property of all collectors.
func TestGCSafetyOracle(t *testing.T) {
	e := newEnv(t)
	tbl := e.createTable("T")
	var rids []ts.RID
	for i := 0; i < 8; i++ {
		rids = append(rids, e.insert(tbl, fmt.Sprintf("r%d-0", i)))
	}
	type obs struct {
		snap *txn.Snapshot
		view map[ts.RID]string
	}
	capture := func(s *txn.Snapshot) obs {
		view := make(map[ts.RID]string)
		for _, rid := range rids {
			if img, ok := e.read(tbl, rid, s.TS()); ok {
				view[rid] = img
			}
		}
		return obs{snap: s, view: view}
	}
	verify := func(o obs, label string) {
		for _, rid := range rids {
			img, ok := e.read(tbl, rid, o.snap.TS())
			want, wantOK := o.view[rid]
			if ok != wantOK || img != want {
				t.Fatalf("%s: snapshot %d sees %q/%v for rid %d, expected %q/%v",
					label, o.snap.TS(), img, ok, rid, want, wantOK)
			}
		}
	}

	collectors := []Collector{
		NewSingleTimestamp(e.m),
		NewGroupTimestamp(e.m),
		NewTableGC(e.m, time.Nanosecond),
		NewInterval(e.m),
		NewGroupInterval(e.m),
	}
	var held []obs
	rnd := uint64(12345)
	next := func(n int) int {
		rnd = rnd*6364136223846793005 + 1442695040888963407
		return int((rnd >> 33) % uint64(n))
	}
	for round := 0; round < 60; round++ {
		// Random writes.
		for k := 0; k < 5; k++ {
			rid := rids[next(len(rids))]
			e.update(tbl, rid, fmt.Sprintf("r%d-%d", rid, round*10+k))
		}
		// Randomly open/close snapshots.
		if len(held) < 4 && next(2) == 0 {
			held = append(held, capture(e.m.AcquireSnapshot(txn.KindCursor, []ts.TableID{tbl.ID})))
		}
		if len(held) > 0 && next(4) == 0 {
			i := next(len(held))
			held[i].snap.Release()
			held = append(held[:i], held[i+1:]...)
		}
		// Random collector pass, then verify every held snapshot.
		c := collectors[next(len(collectors))]
		c.Collect()
		for _, o := range held {
			verify(o, c.Name())
		}
	}
	for _, o := range held {
		o.snap.Release()
	}
}

func TestIntervalFromHashTableMatchesGroups(t *testing.T) {
	build := func() (*env, func() int64, *Interval) {
		e := newEnv(t)
		tbl := e.createTable("T")
		var rids []ts.RID
		for i := 0; i < 6; i++ {
			rids = append(rids, e.insert(tbl, "v0"))
		}
		long := e.m.AcquireSnapshot(txn.KindCursor, []ts.TableID{tbl.ID})
		t.Cleanup(long.Release)
		for round := 1; round <= 7; round++ {
			for _, rid := range rids {
				e.update(tbl, rid, fmt.Sprintf("v%d", round))
			}
		}
		cur := e.m.AcquireSnapshot(txn.KindStatement, nil)
		t.Cleanup(cur.Release)
		return e, e.space.Live, NewInterval(e.m)
	}
	e1, live1, siGroups := build()
	_, live2, siHash := build()
	siHash.FromHashTable = true

	a := siGroups.Collect()
	b := siHash.Collect()
	if a.Versions != b.Versions {
		t.Fatalf("group-reachable SI reclaimed %d, hash-table SI %d", a.Versions, b.Versions)
	}
	if live1() != live2() {
		t.Fatalf("live mismatch: %d vs %d", live1(), live2())
	}
	_ = e1
}

func TestIntervalParallel(t *testing.T) {
	e := newEnv(t)
	tbl := e.createTable("T")
	var rids []ts.RID
	for i := 0; i < 32; i++ {
		rids = append(rids, e.insert(tbl, "v0"))
	}
	long := e.m.AcquireSnapshot(txn.KindCursor, []ts.TableID{tbl.ID})
	defer long.Release()
	for round := 1; round <= 5; round++ {
		for _, rid := range rids {
			e.update(tbl, rid, fmt.Sprintf("v%d", round))
		}
	}
	cur := e.m.AcquireSnapshot(txn.KindStatement, nil)
	defer cur.Release()

	si := NewInterval(e.m)
	si.Parallelism = 4
	st := si.Collect()
	// 32 records x 5 updates: the 4 intermediate update versions of every
	// record are interval garbage (insert pinned by the cursor, newest kept).
	if st.Versions != 32*4 {
		t.Fatalf("parallel SI reclaimed %d, want %d", st.Versions, 32*4)
	}
	if st.ChainsScanned != 32 {
		t.Fatalf("scanned %d chains, want 32", st.ChainsScanned)
	}
	// Reads survive.
	if img, ok := e.read(tbl, rids[7], long.TS()); !ok || img != "v0" {
		t.Fatalf("pinned read = %q,%v", img, ok)
	}
	if img, ok := e.read(tbl, rids[7], cur.TS()); !ok || img != "v5" {
		t.Fatalf("current read = %q,%v", img, ok)
	}
}

// TestRegionsFigure9 validates the Figure 9 region diagnostic: versions
// split into the group collector's region A (below every snapshot), the
// table collector's region B (pinned only by scoped snapshots), and the
// interval collector's region C.
func TestRegionsFigure9(t *testing.T) {
	e := newEnv(t)
	stock := e.createTable("STOCK")
	orders := e.createTable("ORDERS")

	// Two versions fully below everything (region A once snapshots exist
	// above them).
	aRID := e.insert(orders, "a0")
	e.update(orders, aRID, "a1")

	// A cursor pins STOCK; TG scopes it away from the global tracker.
	long := e.m.AcquireSnapshot(txn.KindCursor, []ts.TableID{stock.ID})
	defer long.Release()
	sRID := e.insert(stock, "s0")
	e.update(stock, sRID, "s1")
	e.update(orders, aRID, "a2")
	cur := e.m.AcquireSnapshot(txn.KindStatement, nil)
	defer cur.Release()
	e.update(stock, sRID, "s2")

	// Before scoping: union min == global min == the cursor's ts, so
	// everything at/above it is region C and below it region A; B is empty.
	r := CurrentRegions(e.m)
	if r.B != 0 {
		t.Fatalf("region B before scoping = %d: %s", r.B, r)
	}
	// Only a0 (cid strictly below the cursor's timestamp) is in region A;
	// a1 committed at the cursor's exact timestamp and is its visible image.
	if r.A != 1 {
		t.Fatalf("region A = %d (the strictly-below version): %s", r.A, r)
	}
	if r.Total() != e.space.Live() {
		t.Fatalf("regions total %d != live %d", r.Total(), e.space.Live())
	}

	// Scope the cursor: versions between the cursor ts and the statement
	// snapshot move from C to B.
	long.Handle().ScopeToTables([]ts.TableID{stock.ID})
	r = CurrentRegions(e.m)
	if r.B == 0 {
		t.Fatalf("region B after scoping = 0: %s", r)
	}
	if r.Total() != e.space.Live() {
		t.Fatalf("regions total %d != live %d", r.Total(), e.space.Live())
	}
	// GT drains region A; the others remain.
	NewGroupTimestamp(e.m).Collect()
	r = CurrentRegions(e.m)
	if r.A != 0 {
		t.Fatalf("region A after GT = %d: %s", r.A, r)
	}
}
