package crashmatrix

import (
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"hybridgc/internal/core"
	"hybridgc/internal/fault"
	"hybridgc/internal/tpcc"
	"hybridgc/internal/txn"
	"hybridgc/internal/wal"
)

// TestInventoryComplete pins the failpoint inventory: every site the matrix
// depends on must be declared (importing core/txn/wal registers them), each
// with a description.
func TestInventoryComplete(t *testing.T) {
	want := []string{
		core.FPRecover,
		txn.FPPublish,
		wal.FPAppend,
		wal.FPAppendTorn,
		wal.FPAppendBatchTorn,
		wal.FPCheckpointRename,
		wal.FPCheckpointSync,
		wal.FPCheckpointWrite,
		wal.FPRotate,
		wal.FPSegmentRemove,
		wal.FPSync,
	}
	have := map[string]bool{}
	for _, s := range fault.Inventory() {
		if s.Desc == "" {
			t.Errorf("site %s declared without a description", s.Name)
		}
		have[s.Name] = true
	}
	for _, name := range want {
		if !have[name] {
			t.Errorf("site %s missing from the inventory", name)
		}
	}
	if len(have) < len(want) {
		t.Errorf("inventory has %d sites, want at least %d", len(have), len(want))
	}
}

// TestCrashMatrix runs the full matrix: every declared failpoint, fired early
// (After=0) and deeper into the workload (After=5), plus targeted extras — a
// crash landing exactly on a DDL log record, and disk-full flavors on the
// append and checkpoint-rename paths.
func TestCrashMatrix(t *testing.T) {
	type cell struct {
		name string
		s    Scenario
	}
	var cells []cell
	for _, site := range fault.Inventory() {
		if strings.HasPrefix(site.Name, "shard/") {
			// 2PC protocol sites: unreachable from a single-node workload.
			// Test2PCCrashMatrix drives them against a sharded cluster.
			continue
		}
		afters := []int{0, 5}
		if Classify(site.Name) == ClassRecovery {
			afters = []int{0} // Open fires the site once per attempt
		}
		for _, a := range afters {
			cells = append(cells, cell{
				name: fmt.Sprintf("%s/after=%d", strings.ReplaceAll(site.Name, "/", "_"), a),
				s:    Scenario{Site: site.Name, After: a},
			})
		}
	}
	cells = append(cells,
		cell{name: "wal_append/ddl", s: Scenario{Site: wal.FPAppend, After: DDLAppendAfter}},
		cell{name: "wal_append-torn/ddl", s: Scenario{Site: wal.FPAppendTorn, After: DDLAppendAfter}},
		cell{name: "wal_append/enospc",
			s: Scenario{Site: wal.FPAppend, Err: fault.Errorf("append: no space left on device")}},
		cell{name: "wal_checkpoint-rename/enospc",
			s: Scenario{Site: wal.FPCheckpointRename, After: 1,
				Err: fault.Errorf("rename: no space left on device")}},
	)

	for _, c := range cells {
		t.Run(c.name, func(t *testing.T) {
			rep, err := Run(filepath.Join(t.TempDir(), "db"), c.s)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Fired < 1 {
				t.Fatalf("failpoint never fired: %+v", rep)
			}
			if rep.Recovered < rep.Acked || rep.Recovered > rep.Acked+1 {
				t.Fatalf("recovered CID %d outside [acked %d, acked+1]", rep.Recovered, rep.Acked)
			}
			if strings.HasSuffix(c.name, "/ddl") && !rep.PendingDDL {
				t.Fatalf("scenario was aimed at a DDL record but crashed op %d was not DDL", rep.CrashedAt)
			}
		})
	}
}

// TestCrashMatrixTPCC crashes a live TPC-C run at the durability failpoints
// and requires the recovered database to pass the benchmark's own consistency
// checks after re-attaching the driver — transaction atomicity across the
// crash, not just record-level fidelity.
func TestCrashMatrixTPCC(t *testing.T) {
	cfg := tpcc.Config{Warehouses: 2, Districts: 3, CustomersPerDistrict: 10, Items: 40, Seed: 42}
	for _, site := range []string{wal.FPSync, txn.FPPublish, wal.FPAppendTorn} {
		t.Run(strings.ReplaceAll(site, "/", "_"), func(t *testing.T) {
			defer fault.Reset()
			dir := filepath.Join(t.TempDir(), "db")
			db, err := core.Open(dbConfig(dir))
			if err != nil {
				t.Fatal(err)
			}
			d, err := tpcc.New(db, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := d.Load(); err != nil {
				t.Fatal(err)
			}

			fault.Enable(site, fault.After(60), fault.Once())
			wk := d.NewWorker(1)
			var injected error
			for i := 0; i < 3000 && injected == nil; i++ {
				injected = wk.RunOne()
			}
			if !errors.Is(injected, fault.ErrInjected) {
				t.Fatalf("worker error %v, want the injected failure", injected)
			}
			if failed, _ := db.FailStop(); !failed {
				t.Fatal("durability failure under TPC-C did not fail-stop the engine")
			}
			img := dir + "-crash"
			if err := copyDir(dir, img); err != nil {
				t.Fatal(err)
			}
			db.Close()

			rec, err := core.Open(dbConfig(img))
			if err != nil {
				t.Fatalf("crash image failed to recover: %v", err)
			}
			defer rec.Close()
			d2, err := tpcc.Attach(rec, cfg)
			if err != nil {
				t.Fatalf("re-attach after crash: %v", err)
			}
			if err := d2.Check(); err != nil {
				t.Fatalf("TPC-C consistency violated after crash at %s: %v", site, err)
			}
		})
	}
}
