package crashmatrix

import (
	"errors"
	"fmt"
	"testing"

	"hybridgc/internal/core"
	"hybridgc/internal/engine"
	"hybridgc/internal/fault"
	"hybridgc/internal/shard"
	"hybridgc/internal/ts"
	"hybridgc/internal/txn"
)

// Test2PCCrashMatrix crashes a cross-shard commit at every declared 2PC
// failpoint, snapshots both shard directories the way a power cut would
// observe them, reopens the cluster, and asserts the in-doubt transaction
// resolved identically on every shard: committed everywhere (the decision
// record made it to the coordinator's log) or aborted everywhere (it did
// not — presumed abort). A second reopen proves settlement is idempotent.
func Test2PCCrashMatrix(t *testing.T) {
	scenarios := []struct {
		site   string
		after  int
		commit bool // expected uniform outcome of the in-doubt txn
	}{
		// Crash after the first participant's prepare: no decision record
		// exists, so recovery must abort on both shards — including the one
		// holding a durable prepare.
		{shard.FPPrepare, 0, false},
		// Crash after the second prepare: every participant is in doubt,
		// still no decision — presumed abort everywhere.
		{shard.FPPrepare, 1, false},
		// Crash before the decision record is appended: same contract.
		{shard.FPDecision, 0, false},
		// Crash after the decision is durable but before any participant
		// publishes: recovery must commit on both shards.
		{shard.FPApply, 0, true},
		// Crash after the first participant publishes, before its resolve
		// record: the second participant still settles (the fault fires
		// once), the first is recommitted from its prepare + the decision.
		{shard.FPResolve, 0, true},
		// Crash on the second participant's resolve: the first settled
		// normally, the second is recovered from the decision.
		{shard.FPResolve, 1, true},
	}
	for _, sc := range scenarios {
		t.Run(fmt.Sprintf("%s/after=%d", sc.site, sc.after), func(t *testing.T) {
			runShardScenario(t, sc.site, sc.after, sc.commit)
		})
	}
}

func openShardCluster(dir string) (*shard.Cluster, error) {
	return shard.Open(shard.Config{
		Shards:    2,
		Configure: func(int) core.Config { return dbConfig(dir) },
	})
}

func runShardScenario(t *testing.T, site string, after int, commit bool) {
	defer fault.Reset()
	dir := t.TempDir()
	c, err := openShardCluster(dir)
	if err != nil {
		t.Fatal(err)
	}
	tid, err := c.CreateTable("T")
	if err != nil {
		t.Fatal(err)
	}
	// One row per shard (the default interleave places global RID 1 on shard
	// 0 and RID 2 on shard 1), then one clean cross-shard commit so the
	// abort-expected scenarios recover a value 2PC itself produced.
	var r1, r2 ts.RID
	if err := c.Exec(txn.StmtSI, nil, func(tx engine.Tx) error {
		var err error
		if r1, err = tx.Insert(tid, []byte("a0")); err != nil {
			return err
		}
		r2, err = tx.Insert(tid, []byte("b0"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := crossUpdate(c, tid, r1, r2, "a1", "b1"); err != nil {
		t.Fatalf("clean cross-shard commit: %v", err)
	}

	// Arm exactly one failpoint and run the doomed cross-shard update.
	fault.Enable(site, fault.After(after), fault.Once())
	err = crossUpdate(c, tid, r1, r2, "a2", "b2")
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("crashed commit returned %v, want injected fault", err)
	}
	if n := fault.FiredCount(site); n != 1 {
		t.Fatalf("site %s fired %d times, want 1", site, n)
	}

	// Pull the plug: image both shard directories while the cluster is still
	// open (the fail-stopped shards never close cleanly in a real crash).
	img := dir + "-crash"
	for i := 0; i < 2; i++ {
		if err := copyDir(shard.ShardDir(dir, i), shard.ShardDir(img, i)); err != nil {
			t.Fatal(err)
		}
	}
	fault.Reset()
	c.Close()

	want1, want2 := "a1", "b1"
	if commit {
		want1, want2 = "a2", "b2"
	}
	// Recovery settles the in-doubt transaction; a second reopen must find
	// nothing left to settle and the same state.
	for pass := 1; pass <= 2; pass++ {
		rec, err := openShardCluster(img)
		if err != nil {
			t.Fatalf("reopen %d: %v", pass, err)
		}
		for i := 0; i < 2; i++ {
			if failed, cause := rec.Shard(i).FailStop(); failed {
				t.Fatalf("reopen %d: shard %d fail-stopped: %v", pass, i, cause)
			}
		}
		g1 := mustGet(t, rec, tid, r1)
		g2 := mustGet(t, rec, tid, r2)
		if g1 != want1 || g2 != want2 {
			t.Fatalf("reopen %d: recovered (%q, %q), want uniform (%q, %q)", pass, g1, g2, want1, want2)
		}
		rec.Close()
	}
}

// crossUpdate updates one row on each shard inside a single routed
// transaction, forcing the two-phase commit path.
func crossUpdate(c *shard.Cluster, tid ts.TableID, r1, r2 ts.RID, v1, v2 string) error {
	tx := c.Begin(txn.StmtSI)
	if err := tx.Update(tid, r1, []byte(v1)); err != nil {
		tx.Abort()
		return err
	}
	if err := tx.Update(tid, r2, []byte(v2)); err != nil {
		tx.Abort()
		return err
	}
	return tx.Commit()
}

func mustGet(t *testing.T, c *shard.Cluster, tid ts.TableID, rid ts.RID) string {
	t.Helper()
	tx := c.Begin(txn.StmtSI)
	defer tx.Abort()
	img, err := tx.Get(tid, rid)
	if err != nil {
		t.Fatalf("Get(%d): %v", rid, err)
	}
	return string(img)
}
