// Package crashmatrix drives one simulated crash per declared failpoint and
// validates what recovery produces. Each scenario runs a deterministic mixed
// workload (inserts, updates, deletes, DDL, checkpoints) against a persistent
// engine while mirroring every acknowledged commit into a sequential
// oracle.Model, arms exactly one failpoint, lets it fire, snapshots the
// persistence directory the way a power cut would observe it, reopens, and
// checks the recovered state against the model under the commit-ambiguity
// contract: everything acknowledged survives, at most the single in-flight
// commit may additionally appear, and nothing else.
package crashmatrix

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"hybridgc/internal/core"
	"hybridgc/internal/fault"
	"hybridgc/internal/oracle"
	"hybridgc/internal/ts"
	"hybridgc/internal/txn"
	"hybridgc/internal/wal"
)

// Ops is the workload length of one scenario. Checkpoints land every 23rd op
// and DDL every 37th, so every site in the inventory is hit several times.
const Ops = 200

// DDLAppendAfter is the After() value that lands a wal append-path failure
// exactly on the workload's first mid-run CreateTable: ops 0..35 contain one
// checkpoint (op 22) and 35 log appends, so the DDL record of op 36 is the
// 36th armed hit — After(35). Scenarios using it exercise crash-during-DDL.
const DDLAppendAfter = 35

// Scenario is one cell of the crash matrix.
type Scenario struct {
	// Site is the failpoint to arm (a name from fault.Inventory()).
	Site string
	// After skips that many hits before firing, moving the crash deeper into
	// the workload.
	After int
	// Err optionally substitutes the injected failure — e.g. a simulated
	// "no space left on device" built with fault.Errorf, so the harness can
	// still recognize it as injected. Nil injects the generic fault error.
	Err error
}

// Class is the expected engine reaction to a site failing.
type Class int

const (
	// ClassFatal sites are on the commit durability path: a failure there
	// must fail the in-flight commit and fail-stop the engine.
	ClassFatal Class = iota
	// ClassDegraded sites are on the checkpoint path: a failure surfaces as
	// a checkpoint error, but commits must keep flowing (the log alone
	// carries durability).
	ClassDegraded
	// ClassRecovery sites fire during Open: the failed Open must be
	// side-effect free — a retry recovers the same state.
	ClassRecovery
)

// Classify maps a site to its expected reaction.
func Classify(site string) Class {
	switch site {
	case wal.FPAppend, wal.FPAppendTorn, wal.FPAppendBatchTorn, wal.FPSync, wal.FPRotate, txn.FPPublish:
		return ClassFatal
	case core.FPRecover:
		return ClassRecovery
	default: // wal/checkpoint-write, -sync, -rename, wal/segment-remove
		return ClassDegraded
	}
}

// strictlyAbsent reports whether a site fails before any byte of the commit
// record is durably framed, so the rejected commit must NOT survive recovery.
// FPAppendBatchTorn qualifies too: it flushes whole frames of the batch's
// prefix, but recovery drops an incomplete group entirely, so the torn commit
// must still be absent. The remaining fatal sites (fsync, publish) fail after
// the full record reached the OS, where either outcome is legal for an
// unacknowledged commit.
func strictlyAbsent(site string) bool {
	return site == wal.FPAppend || site == wal.FPAppendTorn || site == wal.FPAppendBatchTorn
}

// Report summarizes one scenario run for the test to assert on.
type Report struct {
	Fired      int64  // times the armed site fired
	Acked      ts.CID // last acknowledged commit identifier
	Recovered  ts.CID // commit identifier after reopening the crash image
	CrashedAt  int    // op index of the injected failure, -1 if none surfaced
	PendingDDL bool   // the in-flight op at the crash was a CreateTable
}

// pendingOp describes the single operation in flight when the crash hit.
type pendingOp struct {
	isDDL bool
	name  string // table name, for DDL
	key   ts.RecordKey
	img   string // "" = delete
}

// runner executes the workload and mirrors acknowledged effects.
type runner struct {
	db      *core.DB
	model   *oracle.Model
	names   map[ts.TableID]string // acked tables by their original ID
	ddl     []string              // acked mid-run DDL names, creation order
	live    []ts.RecordKey        // keys currently live in the model
	t0      ts.TableID
	lastTID ts.TableID
	acked   ts.CID
}

func dbConfig(dir string) core.Config {
	return core.Config{
		Txn:         txn.Config{SynchronousPropagation: true},
		Persistence: &core.Persistence{Dir: dir, Sync: true},
	}
}

// newRunner opens the engine, creates the base table and seeds it — all
// before the scenario's failpoint is armed.
func newRunner(dir string) (*runner, error) {
	db, err := core.Open(dbConfig(dir))
	if err != nil {
		return nil, err
	}
	r := &runner{db: db, model: oracle.NewModel(), names: map[ts.TableID]string{}}
	r.t0, err = db.CreateTable("T0")
	if err != nil {
		db.Close()
		return nil, err
	}
	r.names[r.t0] = "T0"
	r.lastTID = r.t0
	for i := 0; i < 8; i++ {
		if _, err := r.exec(r.t0, fmt.Sprintf("seed%d", i)); err != nil {
			db.Close()
			return nil, err
		}
	}
	return r, nil
}

// ok records one acknowledged commit: the group's CID is the manager's
// current timestamp (the workload is the only writer).
func (r *runner) ok(key ts.RecordKey, img string) {
	r.acked = r.db.Manager().CurrentTS()
	r.model.Apply(key, r.acked, img)
}

// exec inserts one row and mirrors it on success.
func (r *runner) exec(tid ts.TableID, img string) (ts.RID, error) {
	var rid ts.RID
	err := r.db.Exec(txn.StmtSI, nil, func(tx *core.Tx) error {
		var e error
		rid, e = tx.Insert(tid, []byte(img))
		return e
	})
	if err == nil {
		key := ts.RecordKey{Table: tid, RID: rid}
		r.ok(key, img)
		r.live = append(r.live, key)
	}
	return rid, err
}

// step runs workload op i and returns the op's description (for pending-op
// accounting if it failed) plus its error.
func (r *runner) step(i int) (*pendingOp, error) {
	switch {
	case i%23 == 22:
		return nil, r.db.Checkpoint()
	case i%37 == 36:
		name := fmt.Sprintf("T%d", len(r.ddl)+1)
		p := &pendingOp{isDDL: true, name: name}
		tid, err := r.db.CreateTable(name)
		if err != nil {
			return p, err
		}
		r.names[tid] = name
		r.ddl = append(r.ddl, name)
		r.lastTID = tid
		return nil, nil
	}
	switch i % 5 {
	case 0, 1: // insert, occasionally into the newest DDL table
		target := r.t0
		if i%10 == 6 {
			target = r.lastTID
		}
		img := fmt.Sprintf("i%d", i)
		p := &pendingOp{key: ts.RecordKey{Table: target}, img: img}
		rid, err := r.exec(target, img)
		p.key.RID = rid
		return p, err
	case 2, 3: // update a live key
		key := r.live[i%len(r.live)]
		img := fmt.Sprintf("u%d", i)
		p := &pendingOp{key: key, img: img}
		err := r.db.Exec(txn.StmtSI, nil, func(tx *core.Tx) error {
			return tx.Update(key.Table, key.RID, []byte(img))
		})
		if err == nil {
			r.ok(key, img)
		}
		return p, err
	default: // delete a live key
		idx := i % len(r.live)
		key := r.live[idx]
		p := &pendingOp{key: key, img: ""}
		err := r.db.Exec(txn.StmtSI, nil, func(tx *core.Tx) error {
			return tx.Delete(key.Table, key.RID)
		})
		if err == nil {
			r.ok(key, "")
			r.live[idx] = r.live[len(r.live)-1]
			r.live = r.live[:len(r.live)-1]
		}
		return p, err
	}
}

// Run executes one scenario end to end and returns its report; a non-nil
// error is a contract violation (lost commit, phantom, missed fail-stop, …).
func Run(dir string, s Scenario) (*Report, error) {
	defer fault.Reset()
	r, err := newRunner(dir)
	if err != nil {
		return nil, err
	}
	rep := &Report{CrashedAt: -1}
	class := Classify(s.Site)

	if class == ClassRecovery {
		// The crash happens on restart: run the workload clean, close, fail
		// the reopen, and require a retried Open to recover everything.
		for i := 0; i < Ops; i++ {
			if _, err := r.step(i); err != nil {
				r.db.Close()
				return nil, fmt.Errorf("unarmed workload op %d: %w", i, err)
			}
		}
		rep.Acked = r.acked
		r.db.Close()
		fault.Enable(s.Site, armOpts(s)...)
		if _, err := core.Open(dbConfig(dir)); !errors.Is(err, fault.ErrInjected) {
			return nil, fmt.Errorf("open under %s: %v, want injected failure", s.Site, err)
		}
		rep.Fired = fault.FiredCount(s.Site)
		fault.Disable(s.Site)
		return rep, r.validate(dir, s, nil, rep)
	}

	fault.Enable(s.Site, armOpts(s)...)
	var pend *pendingOp
	extra := 0
	for i := 0; i < Ops; i++ {
		p, err := r.step(i)
		if err != nil {
			if !errors.Is(err, fault.ErrInjected) {
				r.db.Close()
				return nil, fmt.Errorf("op %d: unexpected error %w", i, err)
			}
			rep.CrashedAt = i
			if class == ClassFatal {
				pend = p
				break
			}
			continue // degraded: the checkpoint error surfaces, work goes on
		}
		// After a degraded-class failure, prove the engine still commits.
		if class == ClassDegraded && rep.CrashedAt >= 0 {
			if extra++; extra >= 25 {
				break
			}
		}
	}
	rep.Fired = fault.FiredCount(s.Site)
	fault.Disable(s.Site)
	if rep.Fired == 0 {
		r.db.Close()
		return nil, fmt.Errorf("site %s never fired (After=%d too deep?)", s.Site, s.After)
	}
	if rep.CrashedAt < 0 {
		r.db.Close()
		return nil, fmt.Errorf("site %s fired but no operation surfaced an error", s.Site)
	}

	if class == ClassFatal {
		if failed, _ := r.db.FailStop(); !failed {
			r.db.Close()
			return nil, fmt.Errorf("site %s: durability failure did not fail-stop the engine", s.Site)
		}
		werr := r.db.Exec(txn.StmtSI, nil, func(tx *core.Tx) error {
			_, err := tx.Insert(r.t0, []byte("must-not-land"))
			return err
		})
		if !errors.Is(werr, core.ErrFailStop) {
			r.db.Close()
			return nil, fmt.Errorf("site %s: write after fail-stop: %v, want ErrFailStop", s.Site, werr)
		}
	} else if failed, cause := r.db.FailStop(); failed {
		r.db.Close()
		return nil, fmt.Errorf("site %s: checkpoint failure fail-stopped the engine: %v", s.Site, cause)
	}

	rep.Acked = r.acked
	rep.PendingDDL = pend != nil && pend.isDDL

	// Pull the plug: snapshot the directory while the engine is still open,
	// then validate what a restart makes of the image.
	img := dir + "-crash"
	if err := copyDir(dir, img); err != nil {
		r.db.Close()
		return nil, err
	}
	r.db.Close()
	return rep, r.validate(img, s, pend, rep)
}

func armOpts(s Scenario) []fault.Option {
	opts := []fault.Option{fault.After(s.After), fault.Once()}
	if s.Err != nil {
		opts = append(opts, fault.ReturnErr(s.Err))
	}
	return opts
}

// validate reopens dir and checks the recovered state against the model.
func (r *runner) validate(dir string, s Scenario, pend *pendingOp, rep *Report) error {
	rec, err := core.Open(dbConfig(dir))
	if err != nil {
		return fmt.Errorf("crash image failed to recover: %w", err)
	}
	defer rec.Close()
	if failed, cause := rec.FailStop(); failed {
		return fmt.Errorf("recovered engine opened fail-stopped: %v", cause)
	}

	R := rec.Manager().CurrentTS()
	rep.Recovered = R
	switch {
	case R < rep.Acked:
		return fmt.Errorf("lost acknowledged commits: recovered CID %d < acked %d", R, rep.Acked)
	case R > rep.Acked+1:
		return fmt.Errorf("phantom commits: recovered CID %d > acked %d + 1", R, rep.Acked)
	case R == rep.Acked+1:
		if pend == nil || pend.isDDL {
			return fmt.Errorf("recovered CID %d beyond acked %d with no commit in flight", R, rep.Acked)
		}
		if strictlyAbsent(s.Site) {
			return fmt.Errorf("%s: commit rejected before reaching the log survived recovery", s.Site)
		}
	}

	expect := r.model
	if R == rep.Acked+1 {
		expect = r.model.Clone()
		expect.Apply(pend.key, R, pend.img)
	}

	// Every acknowledged table must exist; map original IDs to recovered ones.
	recTID := map[ts.TableID]ts.TableID{}
	for origID, name := range r.names {
		rt := rec.TableID(name)
		if rt == 0 {
			return fmt.Errorf("acked table %q missing after recovery", name)
		}
		recTID[origID] = rt
	}

	// Per-record images at the recovered timestamp.
	for _, key := range expect.Keys() {
		want, wok := expect.Read(key, R)
		got, gok := rec.ReadAt(recTID[key.Table], key.RID, R)
		if gok != wok || (wok && string(got) != want) {
			return fmt.Errorf("record %s/%d: recovered %q,%v want %q,%v",
				r.names[key.Table], key.RID, got, gok, want, wok)
		}
	}
	// No phantoms: live-row counts must match the model exactly.
	perTable := map[ts.TableID]int{}
	for _, key := range expect.Keys() {
		if _, ok := expect.Read(key, R); ok {
			perTable[key.Table]++
		}
	}
	for origID, rt := range recTID {
		if n := rec.ScanCountAt(rt, R); n != perTable[origID] {
			return fmt.Errorf("table %q: %d live rows recovered, want %d",
				r.names[origID], n, perTable[origID])
		}
	}
	return nil
}

// copyDir snapshots a persistence directory the way a crash would observe it:
// log segments before the checkpoint file (a checkpoint observed later than
// the segments can only be newer, keeping the image a consistent commit
// prefix), files pruned mid-copy skipped.
func copyDir(src, dst string) error {
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return err
	}
	copyOne := func(name string) error {
		b, err := os.ReadFile(filepath.Join(src, name))
		if err != nil {
			if os.IsNotExist(err) {
				return nil // pruned between listing and read; a crash misses it too
			}
			return err
		}
		return os.WriteFile(filepath.Join(dst, name), b, 0o644)
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if e.IsDir() || e.Name() == "checkpoint.ckpt" {
			continue
		}
		if err := copyOne(e.Name()); err != nil {
			return err
		}
	}
	return copyOne("checkpoint.ckpt")
}
