package sql

import (
	"sort"
	"strings"

	"hybridgc/internal/gc"
)

// Monitoring views. The paper's Figure 2 is a screenshot of the "HANA
// system load view" plotting Active Versions, the Active Commit ID Range
// and Used Memory; HANA exposes such state through M_* monitoring views.
// These virtual tables provide the same observability through SQL:
//
//	m_version_space (metric TEXT, value INT)   — version/GC counters
//	m_snapshots     (kind TEXT, timestamp INT, age_us INT, scoped INT)
//	m_gc            (collector TEXT, reclaimed INT, runs INT)
//	m_tables        (name TEXT, id INT, partitions INT)
//
// Views are read-only; SELECT (including WHERE/ORDER BY/LIMIT/COUNT/SUM)
// works on them, DML does not.

// viewBuilder materializes one view.
type viewBuilder func(s *Session) [][]Datum

// view pairs a schema with its builder.
type view struct {
	info  *TableInfo
	build viewBuilder
}

// views is the registry of monitoring views, keyed by lower-case name.
var views = map[string]view{
	"m_version_space": {
		info: viewInfo("m_version_space", []ColumnDef{
			{Name: "metric", Type: TText}, {Name: "value", Type: TInt}}),
		build: func(s *Session) [][]Datum {
			st := s.db.Stats()
			metrics := []struct {
				name string
				v    int64
			}{
				{"versions_live", st.VersionsLive},
				{"versions_live_bytes", st.VersionsLiveBytes},
				{"versions_created", st.VersionsCreated},
				{"versions_reclaimed", st.VersionsReclaimed},
				{"versions_migrated", st.VersionsMigrated},
				{"versions_traversed", st.VersionsTraversed},
				{"hash_chains", st.Hash.Chains},
				{"hash_buckets", int64(st.Hash.Buckets)},
				{"hash_collision_ratio_x100", int64(st.Hash.CollisionRatio * 100)},
				{"active_snapshots", int64(st.ActiveSnapshots)},
				{"current_cid", int64(st.CurrentCID)},
				{"global_horizon", int64(st.GlobalHorizon)},
				{"active_cid_range", int64(st.ActiveCIDRange)},
				{"group_list_len", int64(st.GroupListLen)},
				{"statements", st.Statements},
				{"txns_committed", st.Txn.TxnsCommitted},
				{"txns_aborted", st.Txn.TxnsAborted},
				{"groups_committed", st.Txn.GroupsCommitted},
			}
			rows := make([][]Datum, 0, len(metrics))
			for _, m := range metrics {
				rows = append(rows, []Datum{TextD(m.name), IntD(m.v)})
			}
			return rows
		},
	},
	"m_snapshots": {
		info: viewInfo("m_snapshots", []ColumnDef{
			{Name: "kind", Type: TText}, {Name: "timestamp", Type: TInt},
			{Name: "age_us", Type: TInt}, {Name: "scoped", Type: TInt}}),
		build: func(s *Session) [][]Datum {
			snaps := s.db.Manager().Monitor().Active()
			sort.Slice(snaps, func(i, j int) bool { return snaps[i].TS() < snaps[j].TS() })
			rows := make([][]Datum, 0, len(snaps))
			for _, sn := range snaps {
				scoped := int64(0)
				if sn.Scoped() {
					scoped = 1
				}
				rows = append(rows, []Datum{
					TextD(sn.Kind().String()),
					IntD(int64(sn.TS())),
					IntD(sn.Age().Microseconds()),
					IntD(scoped),
				})
			}
			return rows
		},
	},
	"m_gc": {
		info: viewInfo("m_gc", []ColumnDef{
			{Name: "collector", Type: TText}, {Name: "reclaimed", Type: TInt},
			{Name: "runs", Type: TInt}}),
		build: func(s *Session) [][]Datum {
			h := s.db.GC()
			return [][]Datum{
				{TextD("GT"), IntD(h.GT.Totals.Versions()), IntD(h.GT.Totals.Runs())},
				{TextD("TG"), IntD(h.TG.Totals.Versions()), IntD(h.TG.Totals.Runs())},
				{TextD("SI"), IntD(h.SI.Totals.Versions()), IntD(h.SI.Totals.Runs())},
			}
		},
	},
	"m_gc_regions": {
		info: viewInfo("m_gc_regions", []ColumnDef{
			{Name: "region", Type: TText}, {Name: "versions", Type: TInt},
			{Name: "collector", Type: TText}}),
		build: func(s *Session) [][]Datum {
			r := gc.CurrentRegions(s.db.Manager())
			return [][]Datum{
				{TextD("A"), IntD(r.A), TextD("GT")},
				{TextD("B"), IntD(r.B), TextD("TG")},
				{TextD("C"), IntD(r.C), TextD("SI")},
			}
		},
	},
	"m_tables": {
		info: viewInfo("m_tables", []ColumnDef{
			{Name: "name", Type: TText}, {Name: "id", Type: TInt},
			{Name: "partitions", Type: TInt}}),
		build: func(s *Session) [][]Datum {
			tables := s.cat.Tables()
			sort.Slice(tables, func(i, j int) bool { return tables[i].ID < tables[j].ID })
			rows := make([][]Datum, 0, len(tables))
			for _, t := range tables {
				parts := int64(s.cat.DB().TablePartitions(t.ID))
				rows = append(rows, []Datum{TextD(t.Name), IntD(int64(t.ID)), IntD(parts)})
			}
			return rows
		},
	},
}

func viewInfo(name string, cols []ColumnDef) *TableInfo {
	return newTableInfo(name, 0, cols)
}

// lookupView resolves a monitoring view by (case-insensitive) name.
func lookupView(name string) (view, bool) {
	v, ok := views[strings.ToLower(name)]
	return v, ok
}
