package sql

import (
	"sort"
	"strings"

	"hybridgc/internal/gc"
	"hybridgc/internal/txn"
)

// Monitoring views. The paper's Figure 2 is a screenshot of the "HANA
// system load view" plotting Active Versions, the Active Commit ID Range
// and Used Memory; HANA exposes such state through M_* monitoring views.
// These virtual tables provide the same observability through SQL:
//
//	m_version_space (metric TEXT, value INT)   — version/GC counters
//	m_snapshots     (kind TEXT, timestamp INT, age_us INT, scoped INT)
//	m_gc            (collector TEXT, reclaimed INT, runs INT)
//	m_tables        (name TEXT, id INT, partitions INT)
//	m_shards        (shard INT, versions_live INT, current_cid INT,
//	                 horizon INT, snapshots INT)
//
// On a sharded engine the counter views aggregate across shards; m_shards
// breaks the population out per shard, horizons and all.
//
// Views are read-only; SELECT (including WHERE/ORDER BY/LIMIT/COUNT/SUM)
// works on them, DML does not.

// viewBuilder materializes one view.
type viewBuilder func(s *Session) [][]Datum

// view pairs a schema with its builder.
type view struct {
	info  *TableInfo
	build viewBuilder
}

// views is the registry of monitoring views, keyed by lower-case name.
var views = map[string]view{
	"m_version_space": {
		info: viewInfo("m_version_space", []ColumnDef{
			{Name: "metric", Type: TText}, {Name: "value", Type: TInt}}),
		build: func(s *Session) [][]Datum {
			st := s.eng.Stats()
			metrics := []struct {
				name string
				v    int64
			}{
				{"versions_live", st.VersionsLive},
				{"versions_live_bytes", st.VersionsLiveBytes},
				{"versions_created", st.VersionsCreated},
				{"versions_reclaimed", st.VersionsReclaimed},
				{"versions_migrated", st.VersionsMigrated},
				{"versions_traversed", st.VersionsTraversed},
				{"hash_chains", st.Hash.Chains},
				{"hash_buckets", int64(st.Hash.Buckets)},
				{"hash_collision_ratio_x100", int64(st.Hash.CollisionRatio * 100)},
				{"active_snapshots", int64(st.ActiveSnapshots)},
				{"current_cid", int64(st.CurrentCID)},
				{"global_horizon", int64(st.GlobalHorizon)},
				{"active_cid_range", int64(st.ActiveCIDRange)},
				{"group_list_len", int64(st.GroupListLen)},
				{"statements", st.Statements},
				{"txns_committed", st.Txn.TxnsCommitted},
				{"txns_aborted", st.Txn.TxnsAborted},
				{"groups_committed", st.Txn.GroupsCommitted},
			}
			rows := make([][]Datum, 0, len(metrics))
			for _, m := range metrics {
				rows = append(rows, []Datum{TextD(m.name), IntD(m.v)})
			}
			return rows
		},
	},
	"m_snapshots": {
		info: viewInfo("m_snapshots", []ColumnDef{
			{Name: "kind", Type: TText}, {Name: "timestamp", Type: TInt},
			{Name: "age_us", Type: TInt}, {Name: "scoped", Type: TInt}}),
		build: func(s *Session) [][]Datum {
			var snaps []*txn.Snapshot
			for i := 0; i < s.eng.Shards(); i++ {
				snaps = append(snaps, s.eng.Shard(i).Manager().Monitor().Active()...)
			}
			sort.Slice(snaps, func(i, j int) bool { return snaps[i].TS() < snaps[j].TS() })
			rows := make([][]Datum, 0, len(snaps))
			for _, sn := range snaps {
				scoped := int64(0)
				if sn.Scoped() {
					scoped = 1
				}
				rows = append(rows, []Datum{
					TextD(sn.Kind().String()),
					IntD(int64(sn.TS())),
					IntD(sn.Age().Microseconds()),
					IntD(scoped),
				})
			}
			return rows
		},
	},
	"m_gc": {
		info: viewInfo("m_gc", []ColumnDef{
			{Name: "collector", Type: TText}, {Name: "reclaimed", Type: TInt},
			{Name: "runs", Type: TInt}}),
		build: func(s *Session) [][]Datum {
			var gt, tg, si [2]int64
			for i := 0; i < s.eng.Shards(); i++ {
				h := s.eng.Shard(i).GC()
				gt[0] += h.GT.Totals.Versions()
				gt[1] += h.GT.Totals.Runs()
				tg[0] += h.TG.Totals.Versions()
				tg[1] += h.TG.Totals.Runs()
				si[0] += h.SI.Totals.Versions()
				si[1] += h.SI.Totals.Runs()
			}
			return [][]Datum{
				{TextD("GT"), IntD(gt[0]), IntD(gt[1])},
				{TextD("TG"), IntD(tg[0]), IntD(tg[1])},
				{TextD("SI"), IntD(si[0]), IntD(si[1])},
			}
		},
	},
	"m_gc_regions": {
		info: viewInfo("m_gc_regions", []ColumnDef{
			{Name: "region", Type: TText}, {Name: "versions", Type: TInt},
			{Name: "collector", Type: TText}}),
		build: func(s *Session) [][]Datum {
			var a, b, c int64
			for i := 0; i < s.eng.Shards(); i++ {
				r := gc.CurrentRegions(s.eng.Shard(i).Manager())
				a += r.A
				b += r.B
				c += r.C
			}
			return [][]Datum{
				{TextD("A"), IntD(a), TextD("GT")},
				{TextD("B"), IntD(b), TextD("TG")},
				{TextD("C"), IntD(c), TextD("SI")},
			}
		},
	},
	"m_tables": {
		info: viewInfo("m_tables", []ColumnDef{
			{Name: "name", Type: TText}, {Name: "id", Type: TInt},
			{Name: "partitions", Type: TInt}}),
		build: func(s *Session) [][]Datum {
			tables := s.cat.Tables()
			sort.Slice(tables, func(i, j int) bool { return tables[i].ID < tables[j].ID })
			rows := make([][]Datum, 0, len(tables))
			for _, t := range tables {
				parts := int64(s.eng.TablePartitions(t.ID))
				rows = append(rows, []Datum{TextD(t.Name), IntD(int64(t.ID)), IntD(parts)})
			}
			return rows
		},
	},
	"m_shards": {
		info: viewInfo("m_shards", []ColumnDef{
			{Name: "shard", Type: TInt}, {Name: "versions_live", Type: TInt},
			{Name: "current_cid", Type: TInt}, {Name: "horizon", Type: TInt},
			{Name: "snapshots", Type: TInt}}),
		build: func(s *Session) [][]Datum {
			rows := make([][]Datum, 0, s.eng.Shards())
			for i := 0; i < s.eng.Shards(); i++ {
				st := s.eng.Shard(i).Stats()
				rows = append(rows, []Datum{
					IntD(int64(i)),
					IntD(st.VersionsLive),
					IntD(int64(st.CurrentCID)),
					IntD(int64(st.GlobalHorizon)),
					IntD(int64(st.ActiveSnapshots)),
				})
			}
			return rows
		},
	},
}

func viewInfo(name string, cols []ColumnDef) *TableInfo {
	return newTableInfo(name, 0, cols)
}

// lookupView resolves a monitoring view by (case-insensitive) name.
func lookupView(name string) (view, bool) {
	v, ok := views[strings.ToLower(name)]
	return v, ok
}
