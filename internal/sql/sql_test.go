package sql

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"hybridgc/internal/core"
	"hybridgc/internal/gc"
	"hybridgc/internal/txn"
)

func newSession(t *testing.T) *Session {
	t.Helper()
	db, err := core.Open(core.Config{Txn: txn.Config{SynchronousPropagation: true}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Close)
	cat, err := NewCatalog(db)
	if err != nil {
		t.Fatal(err)
	}
	return NewSession(cat)
}

func mustExec(t *testing.T, s *Session, q string) *Result {
	t.Helper()
	res, err := s.Execute(q)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	return res
}

func rowsToStrings(res *Result) []string {
	var out []string
	for _, row := range res.Rows {
		parts := make([]string, len(row))
		for i, d := range row {
			parts[i] = d.String()
		}
		out = append(out, strings.Join(parts, "|"))
	}
	return out
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELEKT * FROM t",
		"CREATE TABLE t (a FLOAT)",
		"INSERT INTO t VALUES (1",
		"SELECT * FROM t WHERE a",
		"SELECT * FROM t LIMIT 'x'",
		"CREATE INDEX t (a)",
		"SELECT * FROM t extra garbage",
		"INSERT INTO t VALUES ('unterminated)",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", q)
		}
	}
}

func TestParseShapes(t *testing.T) {
	st, err := Parse("SELECT name, balance FROM accounts WHERE id = 7 AND name = 'bob' ORDER BY balance DESC LIMIT 3;")
	if err != nil {
		t.Fatal(err)
	}
	sel := st.(*SelectStmt)
	if sel.Table != "accounts" || len(sel.Columns) != 2 || len(sel.Where) != 2 {
		t.Fatalf("parsed %+v", sel)
	}
	if sel.Order == nil || !sel.Order.Desc || sel.Limit != 3 {
		t.Fatalf("order/limit: %+v", sel)
	}
	if sel.Where[1].Value.S != "bob" {
		t.Fatalf("where: %+v", sel.Where)
	}
	st, err = Parse("BEGIN TRANSACTION SNAPSHOT")
	if err != nil || !st.(*BeginStmt).TransSI {
		t.Fatalf("begin snapshot: %+v, %v", st, err)
	}
	st, err = Parse("SELECT SUM(balance) FROM accounts")
	if err != nil || st.(*SelectStmt).Aggregate != "SUM" || st.(*SelectStmt).AggColumn != "balance" {
		t.Fatalf("sum: %+v, %v", st, err)
	}
	st, err = Parse("SELECT MAX(balance) /* aggregate */ FROM accounts GROUP BY city")
	if err != nil || st.(*SelectStmt).Aggregate != "MAX" || st.(*SelectStmt).GroupBy != "city" {
		t.Fatalf("max group by: %+v, %v", st, err)
	}
	if _, err = Parse("SELECT * FROM accounts GROUP BY city"); err == nil {
		t.Fatalf("GROUP BY without aggregate should fail")
	}
}

func TestStringLiteralEscaping(t *testing.T) {
	st, err := Parse("INSERT INTO t VALUES ('it''s')")
	if err != nil {
		t.Fatal(err)
	}
	if got := st.(*InsertStmt).Values[0].S; got != "it's" {
		t.Fatalf("escaped literal = %q", got)
	}
}

func TestCRUDEndToEnd(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, "CREATE TABLE accounts (id INT, name TEXT, balance INT)")
	mustExec(t, s, "INSERT INTO accounts VALUES (1, 'alice', 100)")
	mustExec(t, s, "INSERT INTO accounts VALUES (2, 'bob', 250)")
	mustExec(t, s, "INSERT INTO accounts VALUES (3, 'carol', 50)")

	res := mustExec(t, s, "SELECT * FROM accounts WHERE id = 2")
	if got := rowsToStrings(res); !reflect.DeepEqual(got, []string{"2|bob|250"}) {
		t.Fatalf("point select = %v", got)
	}
	res = mustExec(t, s, "SELECT name FROM accounts ORDER BY balance DESC")
	if got := rowsToStrings(res); !reflect.DeepEqual(got, []string{"bob", "alice", "carol"}) {
		t.Fatalf("order by = %v", got)
	}
	res = mustExec(t, s, "SELECT COUNT(*) FROM accounts")
	if res.Rows[0][0].I != 3 {
		t.Fatalf("count = %v", res.Rows)
	}
	res = mustExec(t, s, "SELECT SUM(balance) FROM accounts")
	if res.Rows[0][0].I != 400 {
		t.Fatalf("sum = %v", res.Rows)
	}
	res = mustExec(t, s, "UPDATE accounts SET balance = 175 WHERE name = 'bob'")
	if res.Affected != 1 {
		t.Fatalf("update affected = %d", res.Affected)
	}
	res = mustExec(t, s, "DELETE FROM accounts WHERE id = 3")
	if res.Affected != 1 {
		t.Fatalf("delete affected = %d", res.Affected)
	}
	res = mustExec(t, s, "SELECT SUM(balance) FROM accounts")
	if res.Rows[0][0].I != 275 {
		t.Fatalf("sum after update+delete = %v", res.Rows)
	}
	res = mustExec(t, s, "SELECT * FROM accounts LIMIT 1")
	if len(res.Rows) != 1 {
		t.Fatalf("limit = %v", res.Rows)
	}
}

func TestTypeAndNameErrors(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, "CREATE TABLE t (a INT, b TEXT)")
	cases := []string{
		"INSERT INTO t VALUES (1)",               // arity
		"INSERT INTO t VALUES ('x', 'y')",        // type
		"SELECT * FROM missing",                  // unknown table
		"SELECT nope FROM t",                     // unknown column
		"SELECT * FROM t WHERE nope = 1",         // unknown where column
		"SELECT SUM(b) FROM t",                   // sum over text
		"UPDATE t SET a = 'text' WHERE a = 1",    // set type
		"UPDATE t SET nope = 1",                  // unknown set column
		"SELECT * FROM t WHERE a = 'not-an-int'", // predicate type
	}
	for _, q := range cases {
		if _, err := s.Execute(q); err == nil {
			t.Errorf("%s: succeeded, want error", q)
		}
	}
	if _, err := s.Execute("CREATE TABLE t (x INT)"); err == nil {
		t.Error("duplicate table must fail")
	}
	if _, err := s.Execute("CREATE TABLE u (x INT, x TEXT)"); err == nil {
		t.Error("duplicate column must fail")
	}
}

func TestExplicitTransactions(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, "CREATE TABLE t (a INT)")
	mustExec(t, s, "BEGIN")
	mustExec(t, s, "INSERT INTO t VALUES (1)")
	mustExec(t, s, "INSERT INTO t VALUES (2)")
	// A second session must not see uncommitted rows.
	s2 := NewSession(s.cat)
	if res := mustExec(t, s2, "SELECT COUNT(*) FROM t"); res.Rows[0][0].I != 0 {
		t.Fatalf("dirty read: %v", res.Rows)
	}
	mustExec(t, s, "COMMIT")
	if res := mustExec(t, s2, "SELECT COUNT(*) FROM t"); res.Rows[0][0].I != 2 {
		t.Fatalf("post-commit count: %v", res.Rows)
	}
	// Rollback undoes everything.
	mustExec(t, s, "BEGIN")
	mustExec(t, s, "INSERT INTO t VALUES (3)")
	mustExec(t, s, "ROLLBACK")
	if res := mustExec(t, s2, "SELECT COUNT(*) FROM t"); res.Rows[0][0].I != 2 {
		t.Fatalf("rollback leaked: %v", res.Rows)
	}
	// Control-flow errors.
	if _, err := s.Execute("COMMIT"); !errors.Is(err, ErrNoTransaction) {
		t.Fatalf("commit without begin = %v", err)
	}
	mustExec(t, s, "BEGIN")
	if _, err := s.Execute("BEGIN"); !errors.Is(err, ErrInTransaction) {
		t.Fatalf("nested begin = %v", err)
	}
	mustExec(t, s, "ROLLBACK")
}

func TestTransSISnapshotSemantics(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, "CREATE TABLE t (a INT)")
	mustExec(t, s, "INSERT INTO t VALUES (1)")

	reader := NewSession(s.cat)
	mustExec(t, reader, "BEGIN SNAPSHOT") // Trans-SI
	if res := mustExec(t, reader, "SELECT COUNT(*) FROM t"); res.Rows[0][0].I != 1 {
		t.Fatalf("initial read: %v", res.Rows)
	}
	mustExec(t, s, "INSERT INTO t VALUES (2)")
	// The Trans-SI reader keeps its begin-time snapshot...
	if res := mustExec(t, reader, "SELECT COUNT(*) FROM t"); res.Rows[0][0].I != 1 {
		t.Fatalf("Trans-SI read moved: %v", res.Rows)
	}
	mustExec(t, reader, "COMMIT")
	// ...and a plain Stmt-SI transaction sees the latest per statement.
	mustExec(t, reader, "BEGIN")
	if res := mustExec(t, reader, "SELECT COUNT(*) FROM t"); res.Rows[0][0].I != 2 {
		t.Fatalf("Stmt-SI read: %v", res.Rows)
	}
	mustExec(t, reader, "ROLLBACK")
}

func TestIndexAcceleratesAndStaysCorrect(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, "CREATE TABLE kv (k TEXT, v INT)")
	for i := 0; i < 200; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO kv VALUES ('key%d', %d)", i, i))
	}
	mustExec(t, s, "CREATE INDEX ON kv (k)")
	tbl, _ := s.cat.Table("kv")
	ix := tbl.Index("k")
	if ix == nil || ix.Len() != 200 {
		t.Fatalf("index backfill: %v", ix)
	}
	if _, err := s.Execute("CREATE INDEX ON kv (k)"); err == nil {
		t.Fatal("duplicate index must fail")
	}

	res := mustExec(t, s, "SELECT v FROM kv WHERE k = 'key42'")
	if got := rowsToStrings(res); !reflect.DeepEqual(got, []string{"42"}) {
		t.Fatalf("indexed point read = %v", got)
	}
	// Updates through the index stay visible; old values stop matching.
	mustExec(t, s, "UPDATE kv SET k = 'renamed' WHERE k = 'key42'")
	if res := mustExec(t, s, "SELECT COUNT(*) FROM kv WHERE k = 'key42'"); res.Rows[0][0].I != 0 {
		t.Fatalf("stale index candidate survived: %v", res.Rows)
	}
	if res := mustExec(t, s, "SELECT v FROM kv WHERE k = 'renamed'"); res.Rows[0][0].I != 42 {
		t.Fatalf("renamed row not found: %v", res.Rows)
	}
	// Deleted rows disappear from indexed reads.
	mustExec(t, s, "DELETE FROM kv WHERE k = 'key7'")
	if res := mustExec(t, s, "SELECT COUNT(*) FROM kv WHERE k = 'key7'"); res.Rows[0][0].I != 0 {
		t.Fatalf("deleted row via index: %v", res.Rows)
	}
	// An aborted write leaves only a stale candidate, filtered on read.
	mustExec(t, s, "BEGIN")
	mustExec(t, s, "INSERT INTO kv VALUES ('doomed', 1)")
	mustExec(t, s, "ROLLBACK")
	if res := mustExec(t, s, "SELECT COUNT(*) FROM kv WHERE k = 'doomed'"); res.Rows[0][0].I != 0 {
		t.Fatalf("aborted insert visible via index: %v", res.Rows)
	}
}

func TestPlanScopeFeedsTableGC(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, "CREATE TABLE hot (a INT)")
	mustExec(t, s, "CREATE TABLE cold (a INT)")
	mustExec(t, s, "INSERT INTO hot VALUES (1)")
	mustExec(t, s, "INSERT INTO cold VALUES (1)")

	stmt, _ := Parse("SELECT * FROM cold")
	scope, err := s.cat.PlanScope(stmt)
	if err != nil || len(scope) != 1 {
		t.Fatalf("PlanScope = %v, %v", scope, err)
	}
	coldInfo, _ := s.cat.Table("cold")
	if scope[0] != coldInfo.ID {
		t.Fatalf("scope = %v, want %d", scope, coldInfo.ID)
	}

	// A long-lived SQL cursor over COLD: its snapshot is scoped from the
	// compiled plan, so the table collector confines it and HOT's garbage
	// stays collectable.
	qc, err := s.OpenQueryCursor("SELECT a FROM cold")
	if err != nil {
		t.Fatal(err)
	}
	defer qc.Close()
	for i := 0; i < 50; i++ {
		mustExec(t, s, fmt.Sprintf("UPDATE hot SET a = %d", i))
	}
	db := s.cat.DB()
	gt := gc.NewGroupTimestamp(db.Manager())
	gt.Collect()
	if db.Space().Live() < 50 {
		t.Fatalf("GT should be blocked by the cursor, live=%d", db.Space().Live())
	}
	tg := gc.NewTableGC(db.Manager(), time.Nanosecond)
	time.Sleep(time.Millisecond)
	st := tg.Collect()
	if st.SnapshotsScoped != 1 || st.Versions == 0 {
		t.Fatalf("TG did not confine the SQL cursor: %s", st)
	}
	// The cursor still reads its snapshot.
	rows, _, err := qc.Fetch(10)
	if err != nil || len(rows) != 1 || rows[0][0].I != 1 {
		t.Fatalf("cursor fetch = %v, %v", rows, err)
	}
}

func TestQueryCursorFilterAndProjection(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, "CREATE TABLE ev (kind TEXT, n INT)")
	for i := 0; i < 30; i++ {
		kind := "even"
		if i%2 == 1 {
			kind = "odd"
		}
		mustExec(t, s, fmt.Sprintf("INSERT INTO ev VALUES ('%s', %d)", kind, i))
	}
	qc, err := s.OpenQueryCursor("SELECT n FROM ev WHERE kind = 'odd'")
	if err != nil {
		t.Fatal(err)
	}
	defer qc.Close()
	if got := qc.Columns(); !reflect.DeepEqual(got, []string{"n"}) {
		t.Fatalf("columns = %v", got)
	}
	var all []int64
	for !qc.Exhausted() {
		rows, st, err := qc.Fetch(4)
		if err != nil {
			t.Fatal(err)
		}
		if st.Traversed == 0 && len(rows) > 0 {
			t.Fatal("fetch stats missing traversal counts")
		}
		for _, r := range rows {
			all = append(all, r[0].I)
		}
	}
	if len(all) != 15 || all[0] != 1 || all[14] != 29 {
		t.Fatalf("cursor rows = %v", all)
	}
	// Cursors reject unsupported shapes.
	if _, err := s.OpenQueryCursor("SELECT COUNT(*) FROM ev"); err == nil {
		t.Fatal("aggregate cursor must fail")
	}
	if _, err := s.OpenQueryCursor("SELECT n FROM ev ORDER BY n"); err == nil {
		t.Fatal("ordered cursor must fail")
	}
	if _, err := s.OpenQueryCursor("INSERT INTO ev VALUES ('x', 1)"); err == nil {
		t.Fatal("non-select cursor must fail")
	}
}

func TestSchemaSurvivesRecovery(t *testing.T) {
	dir := t.TempDir()
	open := func() *core.DB {
		db, err := core.Open(core.Config{
			Txn:         txn.Config{SynchronousPropagation: true},
			Persistence: &core.Persistence{Dir: dir},
		})
		if err != nil {
			t.Fatal(err)
		}
		return db
	}
	db := open()
	cat, err := NewCatalog(db)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSession(cat)
	mustExec(t, s, "CREATE TABLE people (name TEXT, age INT)")
	mustExec(t, s, "INSERT INTO people VALUES ('ada', 36)")
	db.Close()

	db2 := open()
	defer db2.Close()
	cat2, err := NewCatalog(db2)
	if err != nil {
		t.Fatal(err)
	}
	s2 := NewSession(cat2)
	res := mustExec(t, s2, "SELECT name, age FROM people")
	if got := rowsToStrings(res); !reflect.DeepEqual(got, []string{"ada|36"}) {
		t.Fatalf("recovered rows = %v", got)
	}
	mustExec(t, s2, "INSERT INTO people VALUES ('grace', 45)")
	if res := mustExec(t, s2, "SELECT COUNT(*) FROM people"); res.Rows[0][0].I != 2 {
		t.Fatalf("post-recovery insert: %v", res.Rows)
	}
}

func TestWriteConflictSurfacesThroughSQL(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, "CREATE TABLE t (a INT)")
	mustExec(t, s, "INSERT INTO t VALUES (1)")
	s2 := NewSession(s.cat)
	mustExec(t, s, "BEGIN")
	mustExec(t, s, "UPDATE t SET a = 2")
	if _, err := s2.Execute("UPDATE t SET a = 3"); !errors.Is(err, core.ErrWriteConflict) {
		t.Fatalf("conflict = %v", err)
	}
	mustExec(t, s, "COMMIT")
	if _, err := s2.Execute("UPDATE t SET a = 3"); err != nil {
		t.Fatalf("post-commit update: %v", err)
	}
}

func TestMonitoringViews(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, "CREATE TABLE t (a INT)")
	mustExec(t, s, "INSERT INTO t VALUES (1)")
	mustExec(t, s, "INSERT INTO t VALUES (2)")

	// 2 user rows + 1 schema row in the meta table.
	res := mustExec(t, s, "SELECT value FROM m_version_space WHERE metric = 'versions_live'")
	if len(res.Rows) != 1 || res.Rows[0][0].I != 3 {
		t.Fatalf("versions_live = %v", res.Rows)
	}
	// A held cursor appears in m_snapshots.
	qc, err := s.OpenQueryCursor("SELECT a FROM t")
	if err != nil {
		t.Fatal(err)
	}
	defer qc.Close()
	res = mustExec(t, s, "SELECT COUNT(*) FROM m_snapshots WHERE kind = 'cursor'")
	if res.Rows[0][0].I != 1 {
		t.Fatalf("m_snapshots cursor count = %v", res.Rows)
	}
	// GC totals land in m_gc after a hybrid pass.
	s.cat.DB().GC().Collect()
	res = mustExec(t, s, "SELECT reclaimed FROM m_gc ORDER BY reclaimed DESC LIMIT 1")
	if len(res.Rows) != 1 {
		t.Fatalf("m_gc rows = %v", res.Rows)
	}
	// m_tables lists user tables including the schema meta table.
	res = mustExec(t, s, "SELECT COUNT(*) FROM m_tables WHERE name = 't'")
	if res.Rows[0][0].I != 1 {
		t.Fatalf("m_tables = %v", res.Rows)
	}
	// Error paths: bad column, DML against a view.
	if _, err := s.Execute("SELECT nope FROM m_gc"); err == nil {
		t.Fatal("bad view column must fail")
	}
	if _, err := s.Execute("SELECT * FROM m_gc WHERE reclaimed = 'x'"); err == nil {
		t.Fatal("view predicate type mismatch must fail")
	}
	if _, err := s.Execute("INSERT INTO m_gc VALUES ('x', 1, 2)"); err == nil {
		t.Fatal("DML against a view must fail")
	}
	// A user table shadows the view name.
	mustExec(t, s, "CREATE TABLE m_gc (x INT)")
	mustExec(t, s, "INSERT INTO m_gc VALUES (7)")
	res = mustExec(t, s, "SELECT x FROM m_gc")
	if len(res.Rows) != 1 || res.Rows[0][0].I != 7 {
		t.Fatalf("shadowed view read = %v", res.Rows)
	}
}

func TestComparisonPredicates(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, "CREATE TABLE n (v INT, name TEXT)")
	for i := 1; i <= 10; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO n VALUES (%d, 'row%02d')", i, i))
	}
	res := mustExec(t, s, "SELECT COUNT(*) FROM n WHERE v > 7")
	if res.Rows[0][0].I != 3 {
		t.Fatalf("v > 7 count = %v", res.Rows)
	}
	res = mustExec(t, s, "SELECT COUNT(*) FROM n WHERE v < 4")
	if res.Rows[0][0].I != 3 {
		t.Fatalf("v < 4 count = %v", res.Rows)
	}
	res = mustExec(t, s, "SELECT v FROM n WHERE v > 3 AND v < 6 ORDER BY v")
	if got := rowsToStrings(res); !reflect.DeepEqual(got, []string{"4", "5"}) {
		t.Fatalf("range = %v", got)
	}
	// Text comparisons are bytewise.
	res = mustExec(t, s, "SELECT COUNT(*) FROM n WHERE name < 'row03'")
	if res.Rows[0][0].I != 2 {
		t.Fatalf("text < count = %v", res.Rows)
	}
	// An equality index never serves range predicates but stays correct
	// when mixed with one.
	mustExec(t, s, "CREATE INDEX ON n (v)")
	res = mustExec(t, s, "SELECT name FROM n WHERE v = 5 AND name > 'row00'")
	if got := rowsToStrings(res); !reflect.DeepEqual(got, []string{"row05"}) {
		t.Fatalf("mixed predicate = %v", got)
	}
	res = mustExec(t, s, "SELECT COUNT(*) FROM n WHERE v > 0")
	if res.Rows[0][0].I != 10 {
		t.Fatalf("indexed table range scan = %v", res.Rows)
	}
	// Negative literals parse in predicates.
	res = mustExec(t, s, "SELECT COUNT(*) FROM n WHERE v > -1")
	if res.Rows[0][0].I != 10 {
		t.Fatalf("negative literal = %v", res.Rows)
	}
}

func TestOrderedIndex(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, "CREATE TABLE m (v INT, tag TEXT)")
	for i := 1; i <= 50; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO m VALUES (%d, 't%02d')", i%10, i))
	}
	mustExec(t, s, "CREATE ORDERED INDEX ON m (v)")
	tbl, _ := s.cat.Table("m")
	if _, ok := tbl.Index("v").(*OrderedIndex); !ok {
		t.Fatalf("index kind = %T", tbl.Index("v"))
	}
	if got := tbl.Index("v").Len(); got != 50 {
		t.Fatalf("backfill entries = %d", got)
	}
	// Range predicates served by the index must agree with a scan.
	res := mustExec(t, s, "SELECT COUNT(*) FROM m WHERE v < 3")
	if res.Rows[0][0].I != 15 { // v in {0,1,2}: 5 rows each
		t.Fatalf("v < 3 = %v", res.Rows)
	}
	res = mustExec(t, s, "SELECT COUNT(*) FROM m WHERE v > 7")
	if res.Rows[0][0].I != 10 { // v in {8,9}
		t.Fatalf("v > 7 = %v", res.Rows)
	}
	res = mustExec(t, s, "SELECT COUNT(*) FROM m WHERE v = 5")
	if res.Rows[0][0].I != 5 {
		t.Fatalf("v = 5 = %v", res.Rows)
	}
	// Updates keep the ordered index verify-on-read correct.
	mustExec(t, s, "UPDATE m SET v = 100 WHERE tag = 't01'")
	res = mustExec(t, s, "SELECT COUNT(*) FROM m WHERE v > 50")
	if res.Rows[0][0].I != 1 {
		t.Fatalf("post-update range = %v", res.Rows)
	}
	res = mustExec(t, s, "SELECT COUNT(*) FROM m WHERE v = 1")
	if res.Rows[0][0].I != 4 { // t01 moved away
		t.Fatalf("stale candidate survived = %v", res.Rows)
	}
}

// TestOrderedIndexQuickAgainstScan property-checks index-served predicates
// against full scans on random data with testing/quick.
func TestOrderedIndexQuickAgainstScan(t *testing.T) {
	indexed := newSession(t)
	plain := newSession(t)
	for _, s := range []*Session{indexed, plain} {
		mustExec(t, s, "CREATE TABLE q (v INT)")
	}
	mustExec(t, indexed, "CREATE ORDERED INDEX ON q (v)")
	f := func(vals []int8, probe int8, op uint8) bool {
		if len(vals) > 24 {
			vals = vals[:24]
		}
		for _, v := range vals {
			q := fmt.Sprintf("INSERT INTO q VALUES (%d)", v)
			mustExec(t, indexed, q)
			mustExec(t, plain, q)
		}
		sym := []string{"=", "<", ">"}[op%3]
		q := fmt.Sprintf("SELECT COUNT(*) FROM q WHERE v %s %d", sym, probe)
		a := mustExec(t, indexed, q).Rows[0][0].I
		b := mustExec(t, plain, q).Rows[0][0].I
		return a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestRegionsView(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, "CREATE TABLE t (a INT)")
	mustExec(t, s, "INSERT INTO t VALUES (1)")
	res := mustExec(t, s, "SELECT region, versions FROM m_gc_regions ORDER BY region")
	if len(res.Rows) != 3 || res.Rows[0][0].S != "A" {
		t.Fatalf("m_gc_regions = %v", res.Rows)
	}
	var total int64
	for _, row := range res.Rows {
		total += row[1].I
	}
	live := mustExec(t, s, "SELECT value FROM m_version_space WHERE metric = 'versions_live'").Rows[0][0].I
	if total != live {
		t.Fatalf("regions total %d != live %d", total, live)
	}
}
