package sql

// HTAP lane integration: a catalog-attached htap.Manager serves eligible
// aggregate SELECTs (COUNT/SUM/MIN/MAX, optional GROUP BY, no WHERE)
// straight from dictionary-encoded column chunks, with MVCC row reads
// covering the un-migrated delta tail. The conventional statement form is
//
//	SELECT SUM(amount) /* aggregate */ FROM facts GROUP BY region
//
// (the comment is an ordinary hint, skipped by the lexer — eligibility is
// decided structurally). Explicit transactions always take the row path:
// their statements must observe the transaction's own uncommitted writes
// and, under Trans-SI, the transaction snapshot, neither of which the lane
// serves.

import (
	"fmt"
	"sort"
	"strings"

	"hybridgc/internal/colstore"
	"hybridgc/internal/htap"
)

// AttachHTAP wires the column-lane manager into the catalog; sessions then
// route eligible aggregates through it, and EnableHTAP can arm new tables.
func (c *Catalog) AttachHTAP(m *htap.Manager) {
	c.mu.Lock()
	c.htap = m
	c.mu.Unlock()
}

// HTAP returns the attached column-lane manager, or nil.
func (c *Catalog) HTAP() *htap.Manager {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.htap
}

// EnableHTAP enables the column lane for a SQL table on every shard.
func (c *Catalog) EnableHTAP(table string) error {
	m := c.HTAP()
	if m == nil {
		return fmt.Errorf("sql: no HTAP lane manager attached")
	}
	t, err := c.Table(table)
	if err != nil {
		return err
	}
	return m.EnableTable(t.ID, laneSchema(t.Columns))
}

// laneSchema converts a SQL schema to the column lane's layout. The byte
// codecs agree (int64 little-endian, length-prefixed strings), so row
// images written by SQL decode directly into column vectors. Column names
// are lower-cased to match the parser's normalization.
func laneSchema(cols []ColumnDef) colstore.Schema {
	var sch colstore.Schema
	for _, c := range cols {
		sch.Names = append(sch.Names, strings.ToLower(c.Name))
		if c.Type == TInt {
			sch.Types = append(sch.Types, colstore.Int64)
		} else {
			sch.Types = append(sch.Types, colstore.String)
		}
	}
	return sch
}

var aggOps = map[string]htap.AggOp{
	"COUNT": htap.AggCount,
	"SUM":   htap.AggSum,
	"MIN":   htap.AggMin,
	"MAX":   htap.AggMax,
}

// laneAggregate serves an eligible aggregate SELECT from the column lane.
// ok reports whether the lane took the query; on false the caller falls
// back to the row path.
func (s *Session) laneAggregate(t *TableInfo, st *SelectStmt) (*Result, bool, error) {
	if st.Aggregate == "" || s.tx != nil ||
		len(st.Where) != 0 || st.Order != nil || st.Limit != 0 {
		return nil, false, nil
	}
	m := s.cat.HTAP()
	if m == nil || !m.Enabled(t.ID) {
		return nil, false, nil
	}
	op := aggOps[st.Aggregate]
	res, err := m.Aggregate(t.ID, htap.AggSpec{Op: op, Col: st.AggColumn, GroupBy: st.GroupBy})
	if err != nil {
		return nil, true, err
	}
	aggName := strings.ToLower(st.Aggregate)
	if st.GroupBy == "" {
		return &Result{
			Columns: []string{aggName},
			Rows:    [][]Datum{{IntD(res.Groups[0].Result(op))}},
		}, true, nil
	}
	gi, err := t.ColumnIndex(st.GroupBy)
	if err != nil {
		return nil, true, err
	}
	groupText := t.Columns[gi].Type == TText
	out := &Result{Columns: []string{st.GroupBy, aggName}}
	for _, g := range res.Groups {
		key := IntD(g.Key.I)
		if groupText {
			key = TextD(g.Key.S)
		}
		out.Rows = append(out.Rows, []Datum{key, IntD(g.Result(op))})
	}
	return out, true, nil
}

func init() {
	// m_htap surfaces per-table lane state: columnar coverage, migrator
	// lag, the dirty set, and the delta tail — the counters the HTAP
	// experiments plot with the lane on versus off.
	views["m_htap"] = view{
		info: viewInfo("m_htap", []ColumnDef{
			{Name: "name", Type: TText}, {Name: "id", Type: TInt},
			{Name: "chunks", Type: TInt}, {Name: "chunk_rows", Type: TInt},
			{Name: "delta_rows", Type: TInt}, {Name: "dirty_rows", Type: TInt},
			{Name: "migrated_rows", Type: TInt}, {Name: "watermark", Type: TInt},
			{Name: "lag", Type: TInt}, {Name: "passes", Type: TInt}}),
		build: func(s *Session) [][]Datum {
			m := s.cat.HTAP()
			if m == nil {
				return nil
			}
			stats := m.Stats()
			sort.Slice(stats, func(i, j int) bool { return stats[i].Table < stats[j].Table })
			rows := make([][]Datum, 0, len(stats))
			for _, ls := range stats {
				rows = append(rows, []Datum{
					TextD(ls.Name), IntD(int64(ls.Table)),
					IntD(int64(ls.Chunks)), IntD(ls.ChunkRows),
					IntD(ls.DeltaRows), IntD(ls.DirtyRows),
					IntD(ls.MigratedRows), IntD(int64(ls.Watermark)),
					IntD(int64(ls.Lag)), IntD(ls.Passes),
				})
			}
			return rows
		},
	}
}
