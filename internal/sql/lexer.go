// Package sql implements a small SQL front end over the engine: CREATE
// TABLE / CREATE INDEX, INSERT, SELECT (point, scan, and
// COUNT/SUM/MIN/MAX aggregates with optional GROUP BY), UPDATE, DELETE,
// and BEGIN/COMMIT/ROLLBACK with both isolation variants. Statements compile to plans that carry their complete
// table scope, which is exactly how the paper's table garbage collector
// learns a statement snapshot's scope a priori: "under Stmt-SI ... the
// complete set of the accessed tables within that snapshot can be retrieved
// by just accessing its compiled query plan" (§4.3). Every statement
// snapshot and cursor the session acquires is therefore scoped
// automatically, making long-lived SQL readers TG-collectable.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokSymbol
)

// token is one lexeme with its position for error messages.
type token struct {
	kind tokenKind
	text string // keywords upper-cased, identifiers as written
	pos  int
}

// keywords recognized by the parser; everything else alphabetic is an
// identifier.
var keywords = map[string]bool{
	"CREATE": true, "TABLE": true, "INDEX": true, "ORDERED": true, "ON": true,
	"INSERT": true, "INTO": true, "VALUES": true,
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true,
	"UPDATE": true, "SET": true, "DELETE": true,
	"INT": true, "TEXT": true,
	"COUNT": true, "SUM": true, "MIN": true, "MAX": true, "GROUP": true,
	"BEGIN": true, "COMMIT": true, "ROLLBACK": true,
	"TRANSACTION": true, "SNAPSHOT": true, "STATEMENT": true,
	"LIMIT": true, "ORDER": true, "BY": true, "ASC": true, "DESC": true,
}

// lexError reports a scan failure with position context.
type lexError struct {
	pos int
	msg string
}

func (e *lexError) Error() string {
	return fmt.Sprintf("sql: lex error at offset %d: %s", e.pos, e.msg)
}

// lex tokenizes the input.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '/' && i+1 < n && input[i+1] == '*':
			// Block comment, e.g. the conventional /* aggregate */ hint on
			// OLAP statements. Skipped like whitespace.
			end := strings.Index(input[i+2:], "*/")
			if end < 0 {
				return nil, &lexError{pos: i, msg: "unterminated comment"}
			}
			i += 2 + end + 2
		case c == '\'': // string literal with '' escaping
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' {
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, &lexError{pos: start, msg: "unterminated string literal"}
			}
			toks = append(toks, token{kind: tokString, text: sb.String(), pos: start})
		case c == '-' || unicode.IsDigit(c):
			start := i
			if c == '-' {
				i++
				if i >= n || !unicode.IsDigit(rune(input[i])) {
					// A lone '-' is not a number; treat as symbol.
					toks = append(toks, token{kind: tokSymbol, text: "-", pos: start})
					continue
				}
			}
			for i < n && unicode.IsDigit(rune(input[i])) {
				i++
			}
			toks = append(toks, token{kind: tokNumber, text: input[start:i], pos: start})
		case unicode.IsLetter(c) || c == '_':
			start := i
			for i < n && (unicode.IsLetter(rune(input[i])) || unicode.IsDigit(rune(input[i])) || input[i] == '_') {
				i++
			}
			word := input[start:i]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, token{kind: tokKeyword, text: up, pos: start})
			} else {
				toks = append(toks, token{kind: tokIdent, text: word, pos: start})
			}
		case strings.ContainsRune("(),*=;<>", c):
			toks = append(toks, token{kind: tokSymbol, text: string(c), pos: i})
			i++
		default:
			return nil, &lexError{pos: i, msg: fmt.Sprintf("unexpected character %q", c)}
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: n})
	return toks, nil
}
