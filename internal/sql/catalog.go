package sql

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"sync"

	"hybridgc/internal/core"
	"hybridgc/internal/engine"
	"hybridgc/internal/htap"
	"hybridgc/internal/ts"
	"hybridgc/internal/txn"
)

// Errors returned by the SQL layer.
var (
	ErrUnknownTable  = errors.New("sql: unknown table")
	ErrUnknownColumn = errors.New("sql: unknown column")
	ErrTypeMismatch  = errors.New("sql: type mismatch")
	ErrNoTransaction = errors.New("sql: no transaction in progress")
	ErrInTransaction = errors.New("sql: transaction already in progress")
)

// metaTable is the engine table holding serialized schemas, so SQL-created
// tables survive recovery along with their data.
const metaTable = "__sql_schema"

// TableInfo is one SQL table's compiled schema.
type TableInfo struct {
	Name    string
	ID      ts.TableID
	Columns []ColumnDef

	colIdx map[string]int

	mu      sync.RWMutex
	indexes map[string]anyIndex
}

// ColumnIndex resolves a column name to its position.
func (t *TableInfo) ColumnIndex(name string) (int, error) {
	if i, ok := t.colIdx[strings.ToLower(name)]; ok {
		return i, nil
	}
	return 0, fmt.Errorf("%w: %s.%s", ErrUnknownColumn, t.Name, name)
}

// Index returns the index on column, or nil.
func (t *TableInfo) Index(column string) anyIndex {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.indexes[strings.ToLower(column)]
}

// addIndex registers an index; returns false if one already exists.
func (t *TableInfo) addIndex(ix anyIndex) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.indexes[ix.ColumnName()]; dup {
		return false
	}
	t.indexes[ix.ColumnName()] = ix
	return true
}

// eachIndex visits the table's indexes.
func (t *TableInfo) eachIndex(fn func(anyIndex)) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, ix := range t.indexes {
		fn(ix)
	}
}

// Catalog maps SQL schemas onto engine tables and persists them through the
// meta table.
type Catalog struct {
	eng    engine.Engine
	metaID ts.TableID

	mu     sync.RWMutex
	tables map[string]*TableInfo
	htap   *htap.Manager
}

// NewCatalog builds the SQL catalog over a single-node database — the
// compatibility form of NewCatalogEngine.
func NewCatalog(db *core.DB) (*Catalog, error) {
	return NewCatalogEngine(engine.NewSingle(db))
}

// NewCatalogEngine builds (or re-attaches, after recovery) the SQL catalog
// over an engine. On a read-only replica the meta table cannot be created
// locally; it arrives through replication, so attachment is deferred until
// Refresh (or a Table miss) finds it.
func NewCatalogEngine(eng engine.Engine) (*Catalog, error) {
	c := &Catalog{eng: eng, tables: make(map[string]*TableInfo)}
	if id := eng.TableID(metaTable); id != 0 {
		c.metaID = id
		if err := c.loadSchemas(); err != nil {
			return nil, err
		}
		return c, nil
	}
	if eng.ReadOnly() {
		return c, nil // metaID 0: attach lazily once replicated
	}
	id, err := eng.CreateTable(metaTable)
	if err != nil {
		return nil, err
	}
	c.metaID = id
	return c, nil
}

// Refresh re-reads the meta table, picking up schemas that arrived since the
// catalog was built — the normal path on a replica, where both the meta
// table and its rows materialize through the replication stream. Known
// tables are kept (their index state lives on the TableInfo).
func (c *Catalog) Refresh() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.metaID == 0 {
		id := c.eng.TableID(metaTable)
		if id == 0 {
			return nil // nothing replicated yet
		}
		c.metaID = id
	}
	return c.eng.Exec(txn.StmtSI, nil, func(tx engine.Tx) error {
		return tx.Scan(c.metaID, func(_ ts.RID, img []byte) bool {
			name, cols, err := decodeSchema(img)
			if err != nil {
				return true
			}
			key := strings.ToLower(name)
			if _, known := c.tables[key]; known {
				return true
			}
			id := c.eng.TableID(name)
			if id == 0 {
				return true
			}
			c.tables[key] = newTableInfo(name, id, cols)
			return true
		})
	})
}

// loadSchemas re-attaches schemas after recovery.
func (c *Catalog) loadSchemas() error {
	return c.eng.Exec(txn.StmtSI, nil, func(tx engine.Tx) error {
		return tx.Scan(c.metaID, func(_ ts.RID, img []byte) bool {
			name, cols, err := decodeSchema(img)
			if err != nil {
				return true // skip unreadable entries; surfaced via missing table
			}
			id := c.eng.TableID(name)
			if id == 0 {
				return true
			}
			c.tables[strings.ToLower(name)] = newTableInfo(name, id, cols)
			return true
		})
	})
}

func newTableInfo(name string, id ts.TableID, cols []ColumnDef) *TableInfo {
	ti := &TableInfo{Name: name, ID: id, Columns: cols,
		colIdx: make(map[string]int), indexes: make(map[string]anyIndex)}
	for i, c := range cols {
		ti.colIdx[strings.ToLower(c.Name)] = i
	}
	return ti
}

// CreateTable registers a SQL table: an engine table plus a schema row in
// the meta table.
func (c *Catalog) CreateTable(name string, cols []ColumnDef) (*TableInfo, error) {
	key := strings.ToLower(name)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.tables[key]; dup {
		return nil, fmt.Errorf("sql: table %q already exists", name)
	}
	seen := map[string]bool{}
	for _, col := range cols {
		if seen[col.Name] {
			return nil, fmt.Errorf("sql: duplicate column %q", col.Name)
		}
		seen[col.Name] = true
	}
	id, err := c.eng.CreateTable(name)
	if err != nil {
		return nil, err
	}
	err = c.eng.Exec(txn.StmtSI, nil, func(tx engine.Tx) error {
		_, err := tx.Insert(c.metaID, encodeSchema(name, cols))
		return err
	})
	if err != nil {
		return nil, err
	}
	ti := newTableInfo(name, id, cols)
	c.tables[key] = ti
	return ti, nil
}

// Table resolves a SQL table by name. On a read-only database a miss
// triggers a Refresh first: the schema may have replicated in since the
// last lookup.
func (c *Catalog) Table(name string) (*TableInfo, error) {
	key := strings.ToLower(name)
	c.mu.RLock()
	t, ok := c.tables[key]
	c.mu.RUnlock()
	if ok {
		return t, nil
	}
	if c.eng.ReadOnly() {
		if err := c.Refresh(); err == nil {
			c.mu.RLock()
			t, ok = c.tables[key]
			c.mu.RUnlock()
			if ok {
				return t, nil
			}
		}
	}
	return nil, fmt.Errorf("%w: %s", ErrUnknownTable, name)
}

// Tables lists the SQL tables (sorted by name is not guaranteed).
func (c *Catalog) Tables() []*TableInfo {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*TableInfo, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t)
	}
	return out
}

// Engine returns the underlying engine.
func (c *Catalog) Engine() engine.Engine { return c.eng }

// DB returns the underlying single-node engine (shard 0 on a sharded one) —
// the concrete handle monitoring helpers and tests use.
func (c *Catalog) DB() *core.DB { return c.eng.Shard(0) }

// --- row and schema codecs ---

// encodeRow serializes datums per the schema.
func encodeRow(cols []ColumnDef, row []Datum) ([]byte, error) {
	if len(row) != len(cols) {
		return nil, fmt.Errorf("%w: %d values for %d columns", ErrTypeMismatch, len(row), len(cols))
	}
	var b []byte
	for i, col := range cols {
		if row[i].Type != col.Type {
			return nil, fmt.Errorf("%w: column %s is %s, value is %s",
				ErrTypeMismatch, col.Name, col.Type, row[i].Type)
		}
		switch col.Type {
		case TInt:
			b = binary.LittleEndian.AppendUint64(b, uint64(row[i].I))
		case TText:
			b = binary.LittleEndian.AppendUint32(b, uint32(len(row[i].S)))
			b = append(b, row[i].S...)
		}
	}
	return b, nil
}

// decodeRow parses a stored row.
func decodeRow(cols []ColumnDef, b []byte) ([]Datum, error) {
	row := make([]Datum, len(cols))
	off := 0
	for i, col := range cols {
		switch col.Type {
		case TInt:
			if off+8 > len(b) {
				return nil, fmt.Errorf("sql: truncated row at column %s", col.Name)
			}
			row[i] = IntD(int64(binary.LittleEndian.Uint64(b[off:])))
			off += 8
		case TText:
			if off+4 > len(b) {
				return nil, fmt.Errorf("sql: truncated row at column %s", col.Name)
			}
			n := int(binary.LittleEndian.Uint32(b[off:]))
			off += 4
			if off+n > len(b) {
				return nil, fmt.Errorf("sql: truncated text at column %s", col.Name)
			}
			row[i] = TextD(string(b[off : off+n]))
			off += n
		}
	}
	if off != len(b) {
		return nil, fmt.Errorf("sql: %d trailing bytes in row", len(b)-off)
	}
	return row, nil
}

// encodeSchema serializes a schema row for the meta table.
func encodeSchema(name string, cols []ColumnDef) []byte {
	var b []byte
	b = binary.LittleEndian.AppendUint32(b, uint32(len(name)))
	b = append(b, name...)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(cols)))
	for _, c := range cols {
		b = append(b, byte(c.Type))
		b = binary.LittleEndian.AppendUint32(b, uint32(len(c.Name)))
		b = append(b, c.Name...)
	}
	return b
}

// decodeSchema parses a schema row.
func decodeSchema(b []byte) (string, []ColumnDef, error) {
	off := 0
	readStr := func() (string, bool) {
		if off+4 > len(b) {
			return "", false
		}
		n := int(binary.LittleEndian.Uint32(b[off:]))
		off += 4
		if off+n > len(b) {
			return "", false
		}
		s := string(b[off : off+n])
		off += n
		return s, true
	}
	name, ok := readStr()
	if !ok {
		return "", nil, errors.New("sql: corrupt schema row")
	}
	if off+4 > len(b) {
		return "", nil, errors.New("sql: corrupt schema row")
	}
	n := int(binary.LittleEndian.Uint32(b[off:]))
	off += 4
	cols := make([]ColumnDef, 0, n)
	for i := 0; i < n; i++ {
		if off+1 > len(b) {
			return "", nil, errors.New("sql: corrupt schema row")
		}
		ct := ColType(b[off])
		off++
		cn, ok := readStr()
		if !ok {
			return "", nil, errors.New("sql: corrupt schema row")
		}
		cols = append(cols, ColumnDef{Name: cn, Type: ct})
	}
	if off != len(b) {
		return "", nil, errors.New("sql: trailing bytes in schema row")
	}
	return name, cols, nil
}
