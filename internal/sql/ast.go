package sql

import "fmt"

// ColType is a SQL column type.
type ColType int

const (
	// TInt is a 64-bit integer column.
	TInt ColType = iota + 1
	// TText is a string column.
	TText
)

// String implements fmt.Stringer.
func (t ColType) String() string {
	if t == TInt {
		return "INT"
	}
	return "TEXT"
}

// Datum is one SQL value: an integer or a string.
type Datum struct {
	Type ColType
	I    int64
	S    string
}

// IntD and TextD construct datums.
func IntD(v int64) Datum   { return Datum{Type: TInt, I: v} }
func TextD(v string) Datum { return Datum{Type: TText, S: v} }

// String implements fmt.Stringer.
func (d Datum) String() string {
	if d.Type == TInt {
		return fmt.Sprint(d.I)
	}
	return d.S
}

// Equal compares datums by type and value.
func (d Datum) Equal(o Datum) bool {
	return d.Type == o.Type && d.I == o.I && d.S == o.S
}

// Less orders datums of the same type (ints numerically, text bytewise).
func (d Datum) Less(o Datum) bool {
	if d.Type == TInt {
		return d.I < o.I
	}
	return d.S < o.S
}

// ColumnDef is one column in CREATE TABLE.
type ColumnDef struct {
	Name string
	Type ColType
}

// CmpOp is a comparison operator in a predicate.
type CmpOp int

// Comparison operators.
const (
	OpEq CmpOp = iota // =
	OpLt              // <
	OpGt              // >
)

// String implements fmt.Stringer.
func (o CmpOp) String() string {
	switch o {
	case OpLt:
		return "<"
	case OpGt:
		return ">"
	default:
		return "="
	}
}

// Condition is one `col <op> value` predicate; WHERE clauses are AND-chains
// of these.
type Condition struct {
	Column string
	Op     CmpOp
	Value  Datum
}

// OrderBy is an optional ORDER BY column with direction.
type OrderBy struct {
	Column string
	Desc   bool
}

// Statement is any parsed SQL statement.
type Statement interface{ stmtNode() }

// CreateTableStmt is CREATE TABLE name (col type, ...).
type CreateTableStmt struct {
	Name    string
	Columns []ColumnDef
}

// CreateIndexStmt is CREATE [ORDERED] INDEX ON table (column).
type CreateIndexStmt struct {
	Table   string
	Column  string
	Ordered bool
}

// InsertStmt is INSERT INTO table VALUES (v, ...).
type InsertStmt struct {
	Table  string
	Values []Datum
}

// SelectStmt is SELECT cols|*|COUNT(*)|SUM(col)|MIN(col)|MAX(col) FROM
// table [WHERE ...] [GROUP BY col] [ORDER BY col [DESC]] [LIMIT n].
type SelectStmt struct {
	Table   string
	Columns []string // nil = *
	// Aggregate is "", "COUNT", "SUM", "MIN" or "MAX"; AggColumn names the
	// aggregate's argument (empty for COUNT(*)).
	Aggregate string
	AggColumn string
	// GroupBy names the GROUP BY column (aggregate queries only).
	GroupBy string
	Where   []Condition
	Order   *OrderBy
	Limit   int // 0 = unlimited
}

// UpdateStmt is UPDATE table SET col = v, ... [WHERE ...].
type UpdateStmt struct {
	Table string
	Set   []Condition // reuse Condition as column/value pairs
	Where []Condition
}

// DeleteStmt is DELETE FROM table [WHERE ...].
type DeleteStmt struct {
	Table string
	Where []Condition
}

// BeginStmt is BEGIN [TRANSACTION] [SNAPSHOT|STATEMENT]: SNAPSHOT selects
// Trans-SI, STATEMENT (the default) selects Stmt-SI.
type BeginStmt struct {
	TransSI bool
}

// CommitStmt is COMMIT.
type CommitStmt struct{}

// RollbackStmt is ROLLBACK.
type RollbackStmt struct{}

func (*CreateTableStmt) stmtNode() {}
func (*CreateIndexStmt) stmtNode() {}
func (*InsertStmt) stmtNode()      {}
func (*SelectStmt) stmtNode()      {}
func (*UpdateStmt) stmtNode()      {}
func (*DeleteStmt) stmtNode()      {}
func (*BeginStmt) stmtNode()       {}
func (*CommitStmt) stmtNode()      {}
func (*RollbackStmt) stmtNode()    {}
