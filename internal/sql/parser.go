package sql

import (
	"fmt"
	"strconv"
	"strings"
)

// parser walks the token stream.
type parser struct {
	toks []token
	i    int
}

// Parse compiles one SQL statement (an optional trailing ';' is accepted).
func Parse(input string) (Statement, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.statement()
	if err != nil {
		return nil, err
	}
	p.acceptSymbol(";")
	if !p.atEOF() {
		return nil, p.errf("unexpected input after statement: %q", p.peek().text)
	}
	return stmt, nil
}

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sql: parse error at offset %d: %s", p.peek().pos, fmt.Sprintf(format, args...))
}

// acceptKeyword consumes kw if present.
func (p *parser) acceptKeyword(kw string) bool {
	if t := p.peek(); t.kind == tokKeyword && t.text == kw {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errf("expected %s, found %q", kw, p.peek().text)
	}
	return nil
}

func (p *parser) acceptSymbol(s string) bool {
	if t := p.peek(); t.kind == tokSymbol && t.text == s {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectSymbol(s string) error {
	if !p.acceptSymbol(s) {
		return p.errf("expected %q, found %q", s, p.peek().text)
	}
	return nil
}

// identifier accepts an identifier (keywords are not identifiers).
func (p *parser) identifier(what string) (string, error) {
	if t := p.peek(); t.kind == tokIdent {
		p.i++
		return t.text, nil
	}
	return "", p.errf("expected %s, found %q", what, p.peek().text)
}

// literal parses a number or string literal.
func (p *parser) literal() (Datum, error) {
	switch t := p.peek(); t.kind {
	case tokNumber:
		p.i++
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return Datum{}, p.errf("bad integer %q", t.text)
		}
		return IntD(v), nil
	case tokString:
		p.i++
		return TextD(t.text), nil
	default:
		return Datum{}, p.errf("expected literal, found %q", t.text)
	}
}

func (p *parser) statement() (Statement, error) {
	switch t := p.peek(); {
	case t.kind == tokKeyword && t.text == "CREATE":
		return p.create()
	case t.kind == tokKeyword && t.text == "INSERT":
		return p.insert()
	case t.kind == tokKeyword && t.text == "SELECT":
		return p.selectStmt()
	case t.kind == tokKeyword && t.text == "UPDATE":
		return p.update()
	case t.kind == tokKeyword && t.text == "DELETE":
		return p.delete()
	case t.kind == tokKeyword && t.text == "BEGIN":
		p.i++
		p.acceptKeyword("TRANSACTION")
		b := &BeginStmt{}
		if p.acceptKeyword("SNAPSHOT") {
			b.TransSI = true
		} else {
			p.acceptKeyword("STATEMENT")
		}
		return b, nil
	case t.kind == tokKeyword && t.text == "COMMIT":
		p.i++
		return &CommitStmt{}, nil
	case t.kind == tokKeyword && t.text == "ROLLBACK":
		p.i++
		return &RollbackStmt{}, nil
	default:
		return nil, p.errf("expected statement, found %q", t.text)
	}
}

func (p *parser) create() (Statement, error) {
	p.i++ // CREATE
	switch {
	case p.acceptKeyword("TABLE"):
		name, err := p.identifier("table name")
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var cols []ColumnDef
		for {
			cn, err := p.identifier("column name")
			if err != nil {
				return nil, err
			}
			var ct ColType
			switch {
			case p.acceptKeyword("INT"):
				ct = TInt
			case p.acceptKeyword("TEXT"):
				ct = TText
			default:
				return nil, p.errf("expected column type INT or TEXT")
			}
			cols = append(cols, ColumnDef{Name: strings.ToLower(cn), Type: ct})
			if p.acceptSymbol(",") {
				continue
			}
			break
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return &CreateTableStmt{Name: name, Columns: cols}, nil
	case p.acceptKeyword("INDEX"), p.acceptKeyword("ORDERED"):
		ordered := false
		if p.toks[p.i-1].text == "ORDERED" {
			ordered = true
			if err := p.expectKeyword("INDEX"); err != nil {
				return nil, err
			}
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		tbl, err := p.identifier("table name")
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		col, err := p.identifier("column name")
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return &CreateIndexStmt{Table: tbl, Column: strings.ToLower(col), Ordered: ordered}, nil
	default:
		return nil, p.errf("expected TABLE or INDEX after CREATE")
	}
}

func (p *parser) insert() (Statement, error) {
	p.i++ // INSERT
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	tbl, err := p.identifier("table name")
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	var vals []Datum
	for {
		d, err := p.literal()
		if err != nil {
			return nil, err
		}
		vals = append(vals, d)
		if p.acceptSymbol(",") {
			continue
		}
		break
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return &InsertStmt{Table: tbl, Values: vals}, nil
}

func (p *parser) selectStmt() (Statement, error) {
	p.i++ // SELECT
	s := &SelectStmt{}
	switch {
	case p.acceptSymbol("*"):
	case p.acceptKeyword("COUNT"):
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		if err := p.expectSymbol("*"); err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		s.Aggregate = "COUNT"
	case p.acceptKeyword("SUM"), p.acceptKeyword("MIN"), p.acceptKeyword("MAX"):
		agg := p.toks[p.i-1].text
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		col, err := p.identifier("column name")
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		s.Aggregate = agg
		s.AggColumn = strings.ToLower(col)
	default:
		for {
			col, err := p.identifier("column name")
			if err != nil {
				return nil, err
			}
			s.Columns = append(s.Columns, strings.ToLower(col))
			if p.acceptSymbol(",") {
				continue
			}
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	tbl, err := p.identifier("table name")
	if err != nil {
		return nil, err
	}
	s.Table = tbl
	if s.Where, err = p.whereClause(); err != nil {
		return nil, err
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		col, err := p.identifier("column name")
		if err != nil {
			return nil, err
		}
		if s.Aggregate == "" {
			return nil, p.errf("GROUP BY requires an aggregate select list")
		}
		s.GroupBy = strings.ToLower(col)
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		col, err := p.identifier("column name")
		if err != nil {
			return nil, err
		}
		ob := &OrderBy{Column: strings.ToLower(col)}
		if p.acceptKeyword("DESC") {
			ob.Desc = true
		} else {
			p.acceptKeyword("ASC")
		}
		s.Order = ob
	}
	if p.acceptKeyword("LIMIT") {
		d, err := p.literal()
		if err != nil || d.Type != TInt || d.I < 0 {
			return nil, p.errf("LIMIT expects a non-negative integer")
		}
		s.Limit = int(d.I)
	}
	return s, nil
}

func (p *parser) update() (Statement, error) {
	p.i++ // UPDATE
	tbl, err := p.identifier("table name")
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	u := &UpdateStmt{Table: tbl}
	for {
		col, err := p.identifier("column name")
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("="); err != nil {
			return nil, err
		}
		d, err := p.literal()
		if err != nil {
			return nil, err
		}
		u.Set = append(u.Set, Condition{Column: strings.ToLower(col), Value: d})
		if p.acceptSymbol(",") {
			continue
		}
		break
	}
	if u.Where, err = p.whereClause(); err != nil {
		return nil, err
	}
	return u, nil
}

func (p *parser) delete() (Statement, error) {
	p.i++ // DELETE
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	tbl, err := p.identifier("table name")
	if err != nil {
		return nil, err
	}
	d := &DeleteStmt{Table: tbl}
	if d.Where, err = p.whereClause(); err != nil {
		return nil, err
	}
	return d, nil
}

// whereClause parses an optional WHERE col = lit [AND col = lit ...].
func (p *parser) whereClause() ([]Condition, error) {
	if !p.acceptKeyword("WHERE") {
		return nil, nil
	}
	var conds []Condition
	for {
		col, err := p.identifier("column name")
		if err != nil {
			return nil, err
		}
		var op CmpOp
		switch {
		case p.acceptSymbol("="):
			op = OpEq
		case p.acceptSymbol("<"):
			op = OpLt
		case p.acceptSymbol(">"):
			op = OpGt
		default:
			return nil, p.errf("expected comparison operator, found %q", p.peek().text)
		}
		d, err := p.literal()
		if err != nil {
			return nil, err
		}
		conds = append(conds, Condition{Column: strings.ToLower(col), Op: op, Value: d})
		if p.acceptKeyword("AND") {
			continue
		}
		break
	}
	return conds, nil
}
