package sql

import (
	"reflect"
	"testing"
	"time"

	"hybridgc/internal/htap"
)

// laneSession builds a session plus an attached HTAP manager over the same
// engine, mirroring how the server wires the two together.
func laneSession(t *testing.T) (*Session, *htap.Manager) {
	t.Helper()
	s := newSession(t)
	m, err := htap.NewManager(s.cat.Engine(), htap.Config{ChunkSlots: 8})
	if err != nil {
		t.Fatal(err)
	}
	s.cat.AttachHTAP(m)
	return s, m
}

func TestAggregatesRowPath(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, "CREATE TABLE pay (amount INT, region TEXT)")
	for _, q := range []string{
		"INSERT INTO pay VALUES (7, 'east')",
		"INSERT INTO pay VALUES (3, 'west')",
		"INSERT INTO pay VALUES (5, 'east')",
	} {
		mustExec(t, s, q)
	}
	cases := []struct {
		q    string
		want []string
	}{
		{"SELECT SUM(amount) FROM pay", []string{"15"}},
		{"SELECT MIN(amount) FROM pay", []string{"3"}},
		{"SELECT MAX(amount) FROM pay", []string{"7"}},
		{"SELECT COUNT(*) FROM pay", []string{"3"}},
		{"SELECT SUM(amount) FROM pay GROUP BY region", []string{"east|12", "west|3"}},
		{"SELECT MAX(amount) FROM pay WHERE region = 'east' GROUP BY region", []string{"east|7"}},
		{"SELECT COUNT(*) FROM pay GROUP BY region", []string{"east|2", "west|1"}},
	}
	for _, c := range cases {
		if got := rowsToStrings(mustExec(t, s, c.q)); !reflect.DeepEqual(got, c.want) {
			t.Errorf("%s: got %v want %v", c.q, got, c.want)
		}
	}
	if _, err := s.Execute("SELECT SUM(region) FROM pay"); err == nil {
		t.Fatalf("SUM over TEXT column should fail")
	}
}

func TestLaneFastPathMatchesRowPath(t *testing.T) {
	s, m := laneSession(t)
	mustExec(t, s, "CREATE TABLE pay (amount INT, region TEXT)")
	if err := s.cat.EnableHTAP("pay"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		region := "'east'"
		if i%2 == 1 {
			region = "'west'"
		}
		mustExec(t, s, "INSERT INTO pay VALUES (10, "+region+")")
	}
	// Settle and migrate so the lane actually serves columnar batches.
	db := s.cat.DB()
	deadline := time.Now().Add(5 * time.Second)
	ti, _ := s.cat.Table("pay")
	for m.Store(0).Stats()[0].DeltaRows > 0 || m.Store(0).Stats()[0].DirtyRows > 0 {
		db.GC().Collect()
		m.Migrate()
		if time.Now().After(deadline) {
			t.Fatalf("lane never settled: %+v", m.Store(0).Stats())
		}
	}
	if !m.Enabled(ti.ID) {
		t.Fatalf("lane not enabled for table %d", ti.ID)
	}
	queries := []string{
		"SELECT SUM(amount) /* aggregate */ FROM pay",
		"SELECT COUNT(*) FROM pay",
		"SELECT MIN(amount) FROM pay",
		"SELECT SUM(amount) FROM pay GROUP BY region",
	}
	for _, q := range queries {
		fast := rowsToStrings(mustExec(t, s, q))
		// Detach to force the row path, then compare shapes exactly.
		s.cat.AttachHTAP(nil)
		slow := rowsToStrings(mustExec(t, s, q))
		s.cat.AttachHTAP(m)
		if !reflect.DeepEqual(fast, slow) {
			t.Errorf("%s: lane %v != row %v", q, fast, slow)
		}
	}
	// WHERE / ORDER BY / LIMIT and explicit transactions stay on the row path.
	if got := rowsToStrings(mustExec(t, s, "SELECT SUM(amount) FROM pay WHERE region = 'east'")); got[0] != "200" {
		t.Errorf("filtered sum: %v", got)
	}
	mustExec(t, s, "BEGIN")
	mustExec(t, s, "INSERT INTO pay VALUES (1000, 'east')")
	if got := rowsToStrings(mustExec(t, s, "SELECT SUM(amount) FROM pay")); got[0] != "1400" {
		t.Errorf("in-txn sum should see own write: %v", got)
	}
	mustExec(t, s, "ROLLBACK")

	// The rolled-back insert still allocated a RID; settle it away so the
	// view shows a fully-migrated lane (its chunk slot ends up absent).
	for m.Store(0).Stats()[0].DeltaRows > 0 {
		db.GC().Collect()
		m.Migrate()
		if time.Now().After(deadline) {
			t.Fatalf("rolled-back RID never settled: %+v", m.Store(0).Stats())
		}
	}

	// The monitoring view reflects the migrated lane.
	res := mustExec(t, s, "SELECT name, chunk_rows, delta_rows FROM m_htap")
	if got := rowsToStrings(res); len(got) != 1 || got[0] != "pay|40|0" {
		t.Errorf("m_htap: %v", got)
	}
}
