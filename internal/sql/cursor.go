package sql

import (
	"fmt"

	"hybridgc/internal/core"
	"hybridgc/internal/engine"
	"hybridgc/internal/ts"
)

// PlanScope returns the complete set of engine tables a statement will
// access — the information §4.3 says a compiled plan provides under
// Stmt-SI, which makes statement snapshots and cursors eligible for table
// garbage collection. Transaction-control statements return an empty scope.
func (c *Catalog) PlanScope(stmt Statement) ([]ts.TableID, error) {
	name := ""
	switch st := stmt.(type) {
	case *InsertStmt:
		name = st.Table
	case *SelectStmt:
		name = st.Table
	case *UpdateStmt:
		name = st.Table
	case *DeleteStmt:
		name = st.Table
	case *CreateIndexStmt:
		name = st.Table
	default:
		return nil, nil
	}
	t, err := c.Table(name)
	if err != nil {
		return nil, err
	}
	return []ts.TableID{t.ID}, nil
}

// QueryCursor is a SELECT held open by the client: the paper's long-lived
// Stmt-SI blocker. The underlying snapshot is scoped to the compiled plan's
// tables, so the table collector can confine it. Fetch materializes rows
// incrementally (§5.4's incremental query processing).
type QueryCursor struct {
	sess *Session
	t    *TableInfo
	stmt *SelectStmt
	cur  engine.Cursor
	proj []int
	cols []string
}

// OpenQueryCursor compiles a plain (non-aggregate) SELECT and opens a
// cursor over it. ORDER BY and LIMIT are not supported on cursors; the
// result streams in RID order.
func (s *Session) OpenQueryCursor(sqlText string) (*QueryCursor, error) {
	stmt, err := Parse(sqlText)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("sql: cursors require a SELECT, got %T", stmt)
	}
	if sel.Aggregate != "" || sel.Order != nil || sel.Limit != 0 {
		return nil, fmt.Errorf("sql: cursors support plain SELECT only")
	}
	t, err := s.cat.Table(sel.Table)
	if err != nil {
		return nil, err
	}
	// Validate the projection and WHERE columns at open time.
	var proj []int
	cols := sel.Columns
	if cols == nil {
		for i, c := range t.Columns {
			proj = append(proj, i)
			cols = append(cols, c.Name)
		}
	} else {
		for _, name := range sel.Columns {
			i, err := t.ColumnIndex(name)
			if err != nil {
				return nil, err
			}
			proj = append(proj, i)
		}
	}
	for _, c := range sel.Where {
		if _, err := t.ColumnIndex(c.Column); err != nil {
			return nil, err
		}
	}
	// The engine cursor's snapshot is scoped to the plan's single table —
	// exactly the a-priori scope knowledge table GC relies on.
	cur, err := s.eng.OpenCursor(t.ID)
	if err != nil {
		return nil, err
	}
	return &QueryCursor{sess: s, t: t, stmt: sel, cur: cur, proj: proj, cols: cols}, nil
}

// Columns returns the output column names.
func (qc *QueryCursor) Columns() []string { return qc.cols }

// SnapshotTS returns the cursor's pinned snapshot timestamp.
func (qc *QueryCursor) SnapshotTS() ts.CID { return qc.cur.SnapshotTS() }

// Fetch returns up to n matching rows and the underlying fetch statistics
// (latency, versions traversed — Figures 14/15).
func (qc *QueryCursor) Fetch(n int) ([][]Datum, core.FetchStats, error) {
	var out [][]Datum
	var total core.FetchStats
	for len(out) < n && !qc.cur.Exhausted() {
		imgs, st, err := qc.cur.Fetch(n - len(out))
		total.Rows += st.Rows
		total.Traversed += st.Traversed
		total.Duration += st.Duration
		if err != nil {
			return out, total, err
		}
		for _, img := range imgs {
			row, err := decodeRow(qc.t.Columns, img)
			if err != nil {
				return out, total, err
			}
			ok, err := matchRow(qc.t, row, qc.stmt.Where)
			if err != nil {
				return out, total, err
			}
			if !ok {
				continue
			}
			proj := make([]Datum, len(qc.proj))
			for i, p := range qc.proj {
				proj[i] = row[p]
			}
			out = append(out, proj)
		}
	}
	return out, total, nil
}

// Exhausted reports whether the scan has passed the last row.
func (qc *QueryCursor) Exhausted() bool { return qc.cur.Exhausted() }

// Close releases the cursor's snapshot.
func (qc *QueryCursor) Close() { qc.cur.Close() }
