package sql

import (
	"fmt"
	"sort"
	"sync"

	"hybridgc/internal/ts"
)

// Index is a hash index on one column. Entries are inserted at write time
// and never eagerly removed: they are *candidates*, and every index read
// re-verifies the row against the reader's snapshot (and the predicate), so
// entries from aborted transactions, superseded updates or deletes are
// filtered out naturally. This verify-on-read design is what keeps a
// secondary index trivially MVCC-correct.
type Index struct {
	Column string
	colIdx int

	mu sync.RWMutex
	m  map[string][]ts.RID
	// member dedupes (key, rid) pairs so repeated updates to the same value
	// do not grow the postings list.
	member map[string]map[ts.RID]bool
}

// NewIndex creates an index on the column at position colIdx.
func NewIndex(column string, colIdx int) *Index {
	return &Index{
		Column: column,
		colIdx: colIdx,
		m:      make(map[string][]ts.RID),
		member: make(map[string]map[ts.RID]bool),
	}
}

// key folds a datum into a collision-free map key.
func indexKey(d Datum) string {
	if d.Type == TInt {
		return fmt.Sprintf("i\x00%d", d.I)
	}
	return "s\x00" + d.S
}

// Add registers rid as a candidate for value d.
func (ix *Index) Add(d Datum, rid ts.RID) {
	k := indexKey(d)
	ix.mu.Lock()
	defer ix.mu.Unlock()
	set := ix.member[k]
	if set == nil {
		set = make(map[ts.RID]bool)
		ix.member[k] = set
	}
	if set[rid] {
		return
	}
	set[rid] = true
	ix.m[k] = append(ix.m[k], rid)
}

// Candidates returns the RIDs that may currently hold value d. Callers must
// verify each against their snapshot.
func (ix *Index) Candidates(d Datum) []ts.RID {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return append([]ts.RID(nil), ix.m[indexKey(d)]...)
}

// Len returns the number of distinct indexed values.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.m)
}

// anyIndex is the access-path contract both index kinds satisfy.
type anyIndex interface {
	// ColumnName returns the indexed column.
	ColumnName() string
	// ColIdx returns the indexed column's position.
	ColIdx() int
	// Add registers rid as a candidate for value d.
	Add(d Datum, rid ts.RID)
	// CandidatesFor returns candidate RIDs for the condition, and whether
	// the index can serve that condition's operator at all.
	CandidatesFor(c Condition) ([]ts.RID, bool)
	// Len returns the number of distinct indexed values.
	Len() int
}

// ColumnName implements anyIndex.
func (ix *Index) ColumnName() string { return ix.Column }

// ColIdx implements anyIndex.
func (ix *Index) ColIdx() int { return ix.colIdx }

// CandidatesFor implements anyIndex: hash indexes serve equality only.
func (ix *Index) CandidatesFor(c Condition) ([]ts.RID, bool) {
	if c.Op != OpEq {
		return nil, false
	}
	return ix.Candidates(c.Value), true
}

// OrderedIndex keeps (value, RID) entries sorted, serving equality and range
// predicates under the same verify-on-read contract as the hash index:
// entries are candidates, never removed eagerly, and every read re-verifies
// the row at the reader's snapshot.
type OrderedIndex struct {
	Column string
	colIdx int

	mu     sync.RWMutex
	keys   []Datum
	rids   []ts.RID
	member map[string]bool // indexKey(d) + rid, dedup
}

// NewOrderedIndex creates an ordered index on the column at position colIdx.
func NewOrderedIndex(column string, colIdx int) *OrderedIndex {
	return &OrderedIndex{Column: column, colIdx: colIdx, member: make(map[string]bool)}
}

// ColumnName implements anyIndex.
func (ix *OrderedIndex) ColumnName() string { return ix.Column }

// ColIdx implements anyIndex.
func (ix *OrderedIndex) ColIdx() int { return ix.colIdx }

// lowerBound returns the first position whose key is >= d.
func (ix *OrderedIndex) lowerBound(d Datum) int {
	return sort.Search(len(ix.keys), func(i int) bool { return !ix.keys[i].Less(d) })
}

// Add implements anyIndex with an ordered insertion.
func (ix *OrderedIndex) Add(d Datum, rid ts.RID) {
	mk := fmt.Sprintf("%s\x00%d", indexKey(d), rid)
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.member[mk] {
		return
	}
	ix.member[mk] = true
	pos := ix.lowerBound(d)
	ix.keys = append(ix.keys, Datum{})
	ix.rids = append(ix.rids, 0)
	copy(ix.keys[pos+1:], ix.keys[pos:])
	copy(ix.rids[pos+1:], ix.rids[pos:])
	ix.keys[pos] = d
	ix.rids[pos] = rid
}

// CandidatesFor implements anyIndex for =, < and >.
func (ix *OrderedIndex) CandidatesFor(c Condition) ([]ts.RID, bool) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	var lo, hi int
	switch c.Op {
	case OpEq:
		lo = ix.lowerBound(c.Value)
		hi = lo
		for hi < len(ix.keys) && ix.keys[hi].Equal(c.Value) {
			hi++
		}
	case OpLt:
		lo, hi = 0, ix.lowerBound(c.Value)
	case OpGt:
		lo = ix.lowerBound(c.Value)
		for lo < len(ix.keys) && ix.keys[lo].Equal(c.Value) {
			lo++
		}
		hi = len(ix.keys)
	default:
		return nil, false
	}
	return append([]ts.RID(nil), ix.rids[lo:hi]...), true
}

// Len implements anyIndex: the number of entries (not distinct values —
// ordered indexes keep duplicates inline).
func (ix *OrderedIndex) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.keys)
}
