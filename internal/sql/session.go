package sql

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"hybridgc/internal/core"
	"hybridgc/internal/engine"
	"hybridgc/internal/ts"
	"hybridgc/internal/txn"
)

// Result is one statement's outcome.
type Result struct {
	// Columns and Rows carry SELECT output.
	Columns []string
	Rows    [][]Datum
	// Affected counts rows touched by INSERT/UPDATE/DELETE.
	Affected int
	// Message carries DDL/transaction-control acknowledgements.
	Message string
}

// Session executes SQL against one database. Statements outside an explicit
// transaction autocommit; BEGIN/COMMIT/ROLLBACK control explicit ones, with
// `BEGIN SNAPSHOT` selecting Trans-SI (one snapshot for the whole
// transaction) and plain BEGIN selecting Stmt-SI.
type Session struct {
	cat *Catalog
	eng engine.Engine
	tx  engine.Tx
}

// NewSession opens a session over the catalog.
func NewSession(cat *Catalog) *Session {
	return &Session{cat: cat, eng: cat.Engine()}
}

// InTransaction reports whether an explicit transaction is open.
func (s *Session) InTransaction() bool { return s.tx != nil }

// Begin starts an explicit transaction programmatically — the same state
// change as executing BEGIN (or BEGIN SNAPSHOT when transSI is set). The
// wire server maps its BEGIN verb here.
func (s *Session) Begin(transSI bool) error {
	if s.tx != nil {
		return ErrInTransaction
	}
	iso := txn.StmtSI
	if transSI {
		iso = txn.TransSI
	}
	s.tx = s.eng.Begin(iso)
	return nil
}

// BeginShard starts an explicit transaction pinned to one shard — the
// single-shard fast path the shard-aware client routes through. On a
// single-node engine only shard 0 is valid.
func (s *Session) BeginShard(shard int, transSI bool) error {
	if s.tx != nil {
		return ErrInTransaction
	}
	iso := txn.StmtSI
	if transSI {
		iso = txn.TransSI
	}
	tx, err := s.eng.BeginShard(shard, iso)
	if err != nil {
		return err
	}
	s.tx = tx
	return nil
}

// Commit finishes the explicit transaction.
func (s *Session) Commit() error {
	if s.tx == nil {
		return ErrNoTransaction
	}
	err := s.tx.Commit()
	s.tx = nil
	return err
}

// Rollback aborts the explicit transaction.
func (s *Session) Rollback() error {
	if s.tx == nil {
		return ErrNoTransaction
	}
	s.tx.Abort()
	s.tx = nil
	return nil
}

// Tx exposes the open explicit transaction (nil outside one), so callers
// holding a session — the wire server's record-level verbs — can run engine
// operations inside the same transaction SQL statements use.
func (s *Session) Tx() engine.Tx { return s.tx }

// Close aborts any open transaction. A session is not usable afterwards
// only by convention; it holds no other resources.
func (s *Session) Close() {
	if s.tx != nil {
		s.tx.Abort()
		s.tx = nil
	}
}

// Execute parses, compiles and runs one statement.
func (s *Session) Execute(sqlText string) (*Result, error) {
	stmt, err := Parse(sqlText)
	if err != nil {
		return nil, err
	}
	return s.Run(stmt)
}

// Run executes a parsed statement.
func (s *Session) Run(stmt Statement) (*Result, error) {
	switch st := stmt.(type) {
	case *BeginStmt:
		if err := s.Begin(st.TransSI); err != nil {
			return nil, err
		}
		return &Result{Message: "BEGIN " + s.tx.Isolation().String()}, nil
	case *CommitStmt:
		if err := s.Commit(); err != nil {
			return nil, err
		}
		return &Result{Message: "COMMIT"}, nil
	case *RollbackStmt:
		if err := s.Rollback(); err != nil {
			return nil, err
		}
		return &Result{Message: "ROLLBACK"}, nil
	case *CreateTableStmt:
		if _, err := s.cat.CreateTable(st.Name, st.Columns); err != nil {
			return nil, err
		}
		return &Result{Message: fmt.Sprintf("CREATE TABLE %s", st.Name)}, nil
	case *CreateIndexStmt:
		return s.createIndex(st)
	default:
		return s.runDML(stmt)
	}
}

// runDML executes a data statement inside the session transaction or as an
// autocommit transaction.
func (s *Session) runDML(stmt Statement) (*Result, error) {
	if s.tx != nil {
		return s.exec(s.tx, stmt)
	}
	var res *Result
	err := s.eng.Exec(txn.StmtSI, nil, func(tx engine.Tx) error {
		var err error
		res, err = s.exec(tx, stmt)
		return err
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// exec dispatches one compiled data statement on tx.
func (s *Session) exec(tx engine.Tx, stmt Statement) (*Result, error) {
	switch st := stmt.(type) {
	case *InsertStmt:
		return s.execInsert(tx, st)
	case *SelectStmt:
		return s.execSelect(tx, st)
	case *UpdateStmt:
		return s.execUpdate(tx, st)
	case *DeleteStmt:
		return s.execDelete(tx, st)
	default:
		return nil, fmt.Errorf("sql: unsupported statement %T", stmt)
	}
}

func (s *Session) execInsert(tx engine.Tx, st *InsertStmt) (*Result, error) {
	t, err := s.cat.Table(st.Table)
	if err != nil {
		return nil, err
	}
	img, err := encodeRow(t.Columns, st.Values)
	if err != nil {
		return nil, err
	}
	rid, err := tx.Insert(t.ID, img)
	if err != nil {
		return nil, err
	}
	t.eachIndex(func(ix anyIndex) {
		ix.Add(st.Values[ix.ColIdx()], rid)
	})
	return &Result{Affected: 1}, nil
}

// matchRow evaluates an AND-chain of equality conditions.
func matchRow(t *TableInfo, row []Datum, conds []Condition) (bool, error) {
	for _, c := range conds {
		i, err := t.ColumnIndex(c.Column)
		if err != nil {
			return false, err
		}
		if row[i].Type != c.Value.Type {
			return false, fmt.Errorf("%w: comparing %s to %s on %s.%s",
				ErrTypeMismatch, row[i].Type, c.Value.Type, t.Name, c.Column)
		}
		var ok bool
		switch c.Op {
		case OpLt:
			ok = row[i].Less(c.Value)
		case OpGt:
			ok = c.Value.Less(row[i])
		default:
			ok = row[i].Equal(c.Value)
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// pickIndex finds an index able to serve one condition of the WHERE chain,
// returning its candidate set.
func pickIndex(t *TableInfo, conds []Condition) ([]ts.RID, bool) {
	for _, c := range conds {
		ix := t.Index(c.Column)
		if ix == nil {
			continue
		}
		if cands, ok := ix.CandidatesFor(c); ok {
			return cands, true
		}
	}
	return nil, false
}

// forEachMatch drives the access path: index candidates with verification
// when available, a full scan otherwise. fn receives decoded rows that
// satisfy the WHERE chain.
func (s *Session) forEachMatch(tx engine.Tx, t *TableInfo, conds []Condition, fn func(rid ts.RID, row []Datum) (bool, error)) error {
	// Validate condition columns and literal types up front so typos and
	// mismatches fail cleanly even when no row would match.
	for _, c := range conds {
		ci, err := t.ColumnIndex(c.Column)
		if err != nil {
			return err
		}
		if t.Columns[ci].Type != c.Value.Type {
			return fmt.Errorf("%w: comparing %s column %s.%s to a %s literal",
				ErrTypeMismatch, t.Columns[ci].Type, t.Name, c.Column, c.Value.Type)
		}
	}
	if cands, ok := pickIndex(t, conds); ok {
		sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })
		for _, rid := range cands {
			img, err := tx.Get(t.ID, rid)
			if errors.Is(err, core.ErrRecordNotFound) {
				continue // stale candidate: aborted, deleted, or not yet visible
			}
			if err != nil {
				return err
			}
			row, err := decodeRow(t.Columns, img)
			if err != nil {
				return err
			}
			ok, err := matchRow(t, row, conds)
			if err != nil {
				return err
			}
			if !ok {
				continue // stale candidate: value superseded
			}
			cont, err := fn(rid, row)
			if err != nil || !cont {
				return err
			}
		}
		return nil
	}
	var inner error
	err := tx.Scan(t.ID, func(rid ts.RID, img []byte) bool {
		row, err := decodeRow(t.Columns, img)
		if err != nil {
			inner = err
			return false
		}
		ok, err := matchRow(t, row, conds)
		if err != nil {
			inner = err
			return false
		}
		if !ok {
			return true
		}
		cont, err := fn(rid, row)
		if err != nil {
			inner = err
			return false
		}
		return cont
	})
	if inner != nil {
		return inner
	}
	return err
}

// rowIter feeds matching rows (WHERE already applied) to fn until it
// returns false or errors.
type rowIter func(fn func(rid ts.RID, row []Datum) (bool, error)) error

func (s *Session) execSelect(tx engine.Tx, st *SelectStmt) (*Result, error) {
	t, err := s.cat.Table(st.Table)
	if err != nil {
		// Monitoring views resolve when no user table shadows the name.
		if v, ok := lookupView(st.Table); ok {
			all := v.build(s)
			iter := func(fn func(ts.RID, []Datum) (bool, error)) error {
				for _, c := range st.Where {
					ci, err := v.info.ColumnIndex(c.Column)
					if err != nil {
						return err
					}
					if v.info.Columns[ci].Type != c.Value.Type {
						return fmt.Errorf("%w: comparing %s column %s to a %s literal",
							ErrTypeMismatch, v.info.Columns[ci].Type, c.Column, c.Value.Type)
					}
				}
				for i, row := range all {
					ok, err := matchRow(v.info, row, st.Where)
					if err != nil {
						return err
					}
					if !ok {
						continue
					}
					cont, err := fn(ts.RID(i+1), row)
					if err != nil || !cont {
						return err
					}
				}
				return nil
			}
			return s.selectPipeline(v.info, iter, st)
		}
		return nil, err
	}
	if res, ok, err := s.laneAggregate(t, st); ok {
		return res, err
	}
	iter := func(fn func(ts.RID, []Datum) (bool, error)) error {
		return s.forEachMatch(tx, t, st.Where, fn)
	}
	return s.selectPipeline(t, iter, st)
}

// selectPipeline runs aggregation / projection / ORDER BY / LIMIT over the
// iterator.
func (s *Session) selectPipeline(t *TableInfo, iter rowIter, st *SelectStmt) (*Result, error) {
	if st.Aggregate != "" {
		return s.aggregateRows(t, iter, st)
	}

	// Projection.
	proj := make([]int, 0, len(st.Columns))
	cols := st.Columns
	if cols == nil {
		for i, c := range t.Columns {
			proj = append(proj, i)
			cols = append(cols, c.Name)
		}
	} else {
		for _, name := range st.Columns {
			i, err := t.ColumnIndex(name)
			if err != nil {
				return nil, err
			}
			proj = append(proj, i)
		}
	}
	var orderIdx int
	if st.Order != nil {
		var err error
		orderIdx, err = t.ColumnIndex(st.Order.Column)
		if err != nil {
			return nil, err
		}
	}
	type rowPair struct {
		full []Datum
		out  []Datum
	}
	var matched []rowPair
	err := iter(func(_ ts.RID, row []Datum) (bool, error) {
		out := make([]Datum, len(proj))
		for i, p := range proj {
			out[i] = row[p]
		}
		matched = append(matched, rowPair{full: row, out: out})
		// Early LIMIT cutoff only without ORDER BY.
		if st.Order == nil && st.Limit > 0 && len(matched) >= st.Limit {
			return false, nil
		}
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	if st.Order != nil {
		sort.SliceStable(matched, func(i, j int) bool {
			less := matched[i].full[orderIdx].Less(matched[j].full[orderIdx])
			if st.Order.Desc {
				return matched[j].full[orderIdx].Less(matched[i].full[orderIdx])
			}
			return less
		})
		if st.Limit > 0 && len(matched) > st.Limit {
			matched = matched[:st.Limit]
		}
	}
	res := &Result{Columns: cols}
	for _, m := range matched {
		res.Rows = append(res.Rows, m.out)
	}
	return res, nil
}

// aggCell accumulates one aggregate group on the row path; the same four
// accumulators the column lane keeps, so both paths produce identical
// results.
type aggCell struct {
	count int64
	sum   int64
	min   int64
	max   int64
}

func (a *aggCell) add(v int64) {
	if a.count == 0 {
		a.min, a.max = v, v
	} else {
		if v < a.min {
			a.min = v
		}
		if v > a.max {
			a.max = v
		}
	}
	a.count++
	a.sum += v
}

func (a *aggCell) result(agg string) int64 {
	switch agg {
	case "SUM":
		return a.sum
	case "MIN":
		return a.min
	case "MAX":
		return a.max
	default:
		return a.count
	}
}

// aggregateRows computes COUNT/SUM/MIN/MAX (optionally GROUP BY) over the
// row iterator — the fallback when no column lane serves the query.
func (s *Session) aggregateRows(t *TableInfo, iter rowIter, st *SelectStmt) (*Result, error) {
	ci := -1
	if st.AggColumn != "" {
		var err error
		ci, err = t.ColumnIndex(st.AggColumn)
		if err != nil {
			return nil, err
		}
		if t.Columns[ci].Type != TInt {
			return nil, fmt.Errorf("%w: %s over %s column %s",
				ErrTypeMismatch, st.Aggregate, t.Columns[ci].Type, st.AggColumn)
		}
	}
	aggName := strings.ToLower(st.Aggregate)
	if st.GroupBy == "" {
		var a aggCell
		err := iter(func(_ ts.RID, row []Datum) (bool, error) {
			var v int64
			if ci >= 0 {
				v = row[ci].I
			}
			a.add(v)
			return true, nil
		})
		if err != nil {
			return nil, err
		}
		return &Result{Columns: []string{aggName}, Rows: [][]Datum{{IntD(a.result(st.Aggregate))}}}, nil
	}
	gi, err := t.ColumnIndex(st.GroupBy)
	if err != nil {
		return nil, err
	}
	cells := map[Datum]*aggCell{}
	var order []Datum
	err = iter(func(_ ts.RID, row []Datum) (bool, error) {
		key := row[gi]
		c := cells[key]
		if c == nil {
			c = &aggCell{}
			cells[key] = c
			order = append(order, key)
		}
		var v int64
		if ci >= 0 {
			v = row[ci].I
		}
		c.add(v)
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(order, func(i, j int) bool { return order[i].Less(order[j]) })
	res := &Result{Columns: []string{st.GroupBy, aggName}}
	for _, key := range order {
		res.Rows = append(res.Rows, []Datum{key, IntD(cells[key].result(st.Aggregate))})
	}
	return res, nil
}

func (s *Session) execUpdate(tx engine.Tx, st *UpdateStmt) (*Result, error) {
	t, err := s.cat.Table(st.Table)
	if err != nil {
		return nil, err
	}
	// Validate SET columns and types.
	setIdx := make([]int, len(st.Set))
	for i, set := range st.Set {
		ci, err := t.ColumnIndex(set.Column)
		if err != nil {
			return nil, err
		}
		if t.Columns[ci].Type != set.Value.Type {
			return nil, fmt.Errorf("%w: SET %s = %s value", ErrTypeMismatch, set.Column, set.Value.Type)
		}
		setIdx[i] = ci
	}
	// Collect matches first, then write: writing during an index-driven scan
	// of the same table is fine, but collecting keeps Affected exact.
	type match struct {
		rid ts.RID
		row []Datum
	}
	var ms []match
	err = s.forEachMatch(tx, t, st.Where, func(rid ts.RID, row []Datum) (bool, error) {
		ms = append(ms, match{rid: rid, row: append([]Datum(nil), row...)})
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	for _, m := range ms {
		for i, set := range st.Set {
			m.row[setIdx[i]] = set.Value
		}
		img, err := encodeRow(t.Columns, m.row)
		if err != nil {
			return nil, err
		}
		if err := tx.Update(t.ID, m.rid, img); err != nil {
			return nil, err
		}
		t.eachIndex(func(ix anyIndex) {
			ix.Add(m.row[ix.ColIdx()], m.rid)
		})
	}
	return &Result{Affected: len(ms)}, nil
}

func (s *Session) execDelete(tx engine.Tx, st *DeleteStmt) (*Result, error) {
	t, err := s.cat.Table(st.Table)
	if err != nil {
		return nil, err
	}
	var rids []ts.RID
	err = s.forEachMatch(tx, t, st.Where, func(rid ts.RID, _ []Datum) (bool, error) {
		rids = append(rids, rid)
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	for _, rid := range rids {
		if err := tx.Delete(t.ID, rid); err != nil {
			return nil, err
		}
	}
	return &Result{Affected: len(rids)}, nil
}

// createIndex registers the index and backfills it from the current data.
func (s *Session) createIndex(st *CreateIndexStmt) (*Result, error) {
	t, err := s.cat.Table(st.Table)
	if err != nil {
		return nil, err
	}
	ci, err := t.ColumnIndex(st.Column)
	if err != nil {
		return nil, err
	}
	var ix anyIndex
	if st.Ordered {
		ix = NewOrderedIndex(strings.ToLower(st.Column), ci)
	} else {
		ix = NewIndex(strings.ToLower(st.Column), ci)
	}
	if !t.addIndex(ix) {
		return nil, fmt.Errorf("sql: index on %s(%s) already exists", t.Name, st.Column)
	}
	err = s.eng.Exec(txn.StmtSI, nil, func(tx engine.Tx) error {
		return tx.Scan(t.ID, func(rid ts.RID, img []byte) bool {
			if row, err := decodeRow(t.Columns, img); err == nil {
				ix.Add(row[ci], rid)
			}
			return true
		})
	})
	if err != nil {
		return nil, err
	}
	return &Result{Message: fmt.Sprintf("CREATE INDEX ON %s(%s)", t.Name, st.Column)}, nil
}
