package wire

import (
	"bufio"
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"hybridgc/internal/core"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	body := (&Builder{}).U32(7).Str("hello").Take()
	if _, err := WriteFrame(&buf, OpExec, body); err != nil {
		t.Fatal(err)
	}
	op, got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if op != OpExec || !bytes.Equal(got, body) {
		t.Fatalf("frame round trip: op=%d body=%v", op, got)
	}
}

func TestFrameLengthBounds(t *testing.T) {
	// A zero-length frame (no opcode) is rejected.
	r := bytes.NewReader([]byte{0, 0, 0, 0})
	if _, _, err := ReadFrame(r); err == nil {
		t.Fatal("zero-length frame accepted")
	}
	// An absurd length prefix is rejected before allocation.
	r = bytes.NewReader([]byte{0xff, 0xff, 0xff, 0xff})
	if _, _, err := ReadFrame(r); err == nil {
		t.Fatal("oversized frame accepted")
	}
	if _, err := WriteFrame(&bytes.Buffer{}, OpPing, make([]byte, MaxFrame)); err == nil {
		t.Fatal("oversized write accepted")
	}
}

func TestParserStickyError(t *testing.T) {
	r := NewParser((&Builder{}).U32(5).Take())
	_ = r.U64() // runs past the body
	if r.Err() == nil {
		t.Fatal("overrun not reported")
	}
	if got := r.U32(); got != 0 {
		t.Fatalf("post-failure read returned %d", got)
	}
	if r.Str() != "" || r.Bytes() != nil {
		t.Fatal("post-failure reads must be zero")
	}
}

func TestValueRoundTrip(t *testing.T) {
	w := &Builder{}
	w.U8(3).U16(500).U32(1 << 20).U64(1 << 40).I64(-9).Bool(true)
	w.Bytes([]byte{1, 2, 3}).Str("drei")
	r := NewParser(w.Take())
	if r.U8() != 3 || r.U16() != 500 || r.U32() != 1<<20 || r.U64() != 1<<40 {
		t.Fatal("unsigned round trip broke")
	}
	if r.I64() != -9 || !r.Bool() {
		t.Fatal("signed/bool round trip broke")
	}
	if !bytes.Equal(r.Bytes(), []byte{1, 2, 3}) || r.Str() != "drei" {
		t.Fatal("bytes/string round trip broke")
	}
	if r.Err() != nil || r.Rest() != 0 {
		t.Fatalf("err=%v rest=%d", r.Err(), r.Rest())
	}
}

func TestRowsRoundTrip(t *testing.T) {
	rows := [][]Datum{
		{{Tag: DatumInt, I: 42}, {Tag: DatumText, S: "x"}},
		{{Tag: DatumInt, I: -1}, {Tag: DatumText, S: strings.Repeat("y", 300)}},
	}
	w := &Builder{}
	PutRows(w, rows)
	got := GetRows(NewParser(w.Take()))
	if len(got) != 2 || got[0][0].I != 42 || got[1][1].S != rows[1][1].S {
		t.Fatalf("rows round trip: %+v", got)
	}
	if got[0][1].String() != "x" || got[0][0].String() != "42" {
		t.Fatal("datum String broke")
	}
}

func TestErrorCodeMapping(t *testing.T) {
	cases := []struct {
		err  error
		code uint16
	}{
		{core.ErrWriteConflict, ECodeWriteConflict},
		{core.ErrVersionPressure, ECodeVersionPressure},
		{core.ErrFailStop, ECodeFailStop},
		{core.ErrSnapshotKilled, ECodeSnapshotKilled},
		{core.ErrRecordNotFound, ECodeRecordNotFound},
		{core.ErrTableNotFound, ECodeTableNotFound},
		{ErrDraining, ECodeDraining},
		{errors.New("anything else"), ECodeGeneric},
	}
	for _, c := range cases {
		if got := ErrorCode(c.err); got != c.code {
			t.Fatalf("ErrorCode(%v) = %d, want %d", c.err, got, c.code)
		}
	}
}

func TestWireErrorUnwrapsToSentinel(t *testing.T) {
	e := &Error{Code: ECodeVersionPressure, Msg: "remote: version pressure"}
	if !errors.Is(e, core.ErrVersionPressure) {
		t.Fatal("wire error does not unwrap to ErrVersionPressure")
	}
	if !core.IsTransient(e) {
		t.Fatal("wire-carried pressure error must stay transient")
	}
	conflict := &Error{Code: ECodeWriteConflict, Msg: "remote: conflict"}
	if !core.IsTransient(conflict) {
		t.Fatal("wire-carried conflict must stay transient")
	}
	failstop := &Error{Code: ECodeFailStop, Msg: "remote: fail-stop"}
	if core.IsTransient(failstop) {
		t.Fatal("fail-stop must not be transient")
	}
	if (&Error{Code: ECodeGeneric, Msg: "x"}).Unwrap() != nil {
		t.Fatal("generic errors unwrap to nil")
	}
}

func TestStatsRoundTrip(t *testing.T) {
	in := Stats{
		Statements: 10, VersionsLive: 20, VersionsLiveBytes: 30,
		VersionsCreated: 40, VersionsReclaimed: 50, VersionsMigrated: 60,
		ActiveSnapshots: 2, CurrentCID: 99, GlobalHorizon: 88, ActiveCIDRange: 11,
		TxnsCommitted: 5, GroupsCommitted: 4, FailStop: true,
		PressureEnabled: true, PressureLevel: "soft",
		PressureLive: 7, PressureSoft: 8, PressureHard: 9,
		PressureSoftTrips: 1, PressureEmergencies: 2, PressureBackpressured: 3,
		PressureRejected: 4, PressureEvicted: 5,
		Conns: 3, ConnsTotal: 30, Requests: 1000, RequestErrors: 1,
		BytesIn: 12345, BytesOut: 54321, CursorsOpen: 2, CursorsReaped: 6,
		LatMean: time.Millisecond, LatP50: 2 * time.Millisecond,
		LatP95: 3 * time.Millisecond, LatP99: 4 * time.Millisecond,
		ReplRole: "primary", ReplUpstream: "", ReplAppliedLSN: 77, ReplPrimaryLSN: 78,
		ReplRecordsSent: 79, ReplRecordsApplied: 80, ReplReconnects: 2, ReplDemotions: 1,
		Replicas: []ReplicaStat{
			{ID: "r1", Connected: true, Demoted: false, AppliedLSN: 4<<32 | 7,
				PinnedSTS: 42, FloorSegment: 4, SegmentLag: 1, LastReportAge: 250 * time.Millisecond},
			{ID: "r2", Connected: false, Demoted: true},
		},
	}
	w := &Builder{}
	in.Encode(w)
	r := NewParser(w.Take())
	out := DecodeStats(r)
	if r.Err() != nil || r.Rest() != 0 {
		t.Fatalf("err=%v rest=%d", r.Err(), r.Rest())
	}
	if !reflect.DeepEqual(out, in) {
		t.Fatalf("stats round trip:\n in=%+v\nout=%+v", in, out)
	}
}

func TestReplMessageRoundTrips(t *testing.T) {
	reqIn := ReplStreamRequest{ReplicaID: "r1", StartLSN: 5<<32 | 12}
	b := &Builder{}
	reqIn.Encode(b)
	p := NewParser(b.Take())
	if reqOut := DecodeReplStreamRequest(p); p.Err() != nil || reqOut != reqIn {
		t.Fatalf("stream request round trip: err=%v out=%+v", p.Err(), reqOut)
	}

	repIn := ReplReport{AppliedLSN: 3<<32 | 9, MinSTS: 1234, HasSnapshots: true, OpenSnapshots: 5}
	b = &Builder{}
	repIn.Encode(b)
	p = NewParser(b.Take())
	if repOut := DecodeReplReport(p); p.Err() != nil || repOut != repIn {
		t.Fatalf("report round trip: err=%v out=%+v", p.Err(), repOut)
	}
}

func TestStreamMsgRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	if err := WriteStreamMsg(bw, RmRecord, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := WriteStreamMsg(bw, RmHeartbeat, nil); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(&buf)
	op, body, err := ReadStreamMsg(br)
	if err != nil || op != RmRecord || string(body) != "payload" {
		t.Fatalf("msg 1: op=%#x body=%q err=%v", op, body, err)
	}
	op, body, err = ReadStreamMsg(br)
	if err != nil || op != RmHeartbeat || len(body) != 0 {
		t.Fatalf("msg 2: op=%#x body=%q err=%v", op, body, err)
	}
}
