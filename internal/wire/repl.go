package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Replication stream protocol. An OpReplStream request hijacks the
// connection: after the server acknowledges with StOK (body: u64 primary
// NextLSN), both sides exchange length-prefixed stream messages directly —
// `u32 BE length | u8 opcode | body` — outside the request/response cycle.
// Primary → replica: RmCheckpoint / RmRecord / RmHeartbeat / RmEnd.
// Replica → primary: RmReport.
const (
	// RmCheckpoint carries an encoded wal.Checkpoint for bootstrap (only
	// when the request's StartLSN is zero, and only as the first message).
	RmCheckpoint = 0x20
	// RmRecord carries one WAL record: u64 LSN | raw record payload
	// (wal.Record.EncodePayload framing, CRC-free — the stream relies on
	// TCP integrity, the replica re-frames nothing).
	RmRecord = 0x21
	// RmHeartbeat carries the primary's next append LSN (u64) plus a resume
	// point (u64, 0 when unknown): when the primary can prove the replica
	// already holds everything below the head, the resume point advances the
	// replica's applied cursor across record-free log rotations.
	RmHeartbeat = 0x22
	// RmEnd terminates the stream: u8 end code | string detail. Sent on
	// graceful drain, demotion, or an unrecoverable stream error.
	RmEnd = 0x23
	// RmReport flows replica → primary: applied LSN + snapshot horizon.
	RmReport = 0x30
)

// Stream end codes carried by RmEnd.
const (
	// EndDrain: the primary is shutting down; reconnect later.
	EndDrain = 1
	// EndDemoted: the replica exceeded the lag bound and lost its segment
	// floor and horizon pin; it must re-bootstrap from a checkpoint.
	EndDemoted = 2
	// EndError: internal stream failure; the replica may resume.
	EndError = 3
)

// ReplStreamRequest is the body of an OpReplStream request. StartLSN zero
// asks for a checkpoint bootstrap; nonzero resumes the WAL stream at that
// LSN (which must still be retained on the primary, else ErrReplTooOld).
type ReplStreamRequest struct {
	ReplicaID string
	StartLSN  uint64
}

// Encode appends the request body to b.
func (q ReplStreamRequest) Encode(b *Builder) {
	b.Str(q.ReplicaID).U64(q.StartLSN)
}

// DecodeReplStreamRequest parses an OpReplStream request body.
func DecodeReplStreamRequest(r *Parser) ReplStreamRequest {
	return ReplStreamRequest{ReplicaID: r.Str(), StartLSN: r.U64()}
}

// ReplReport is the body of an RmReport message: the replica's applied
// position and its local snapshot horizon. MinSTS is meaningful only when
// HasSnapshots is true; a report without snapshots releases the replica's
// pin on the cluster GC horizon (its floor segment is kept).
type ReplReport struct {
	AppliedLSN    uint64
	MinSTS        uint64
	HasSnapshots  bool
	OpenSnapshots int64
}

// Encode appends the report body to b.
func (p ReplReport) Encode(b *Builder) {
	b.U64(p.AppliedLSN).U64(p.MinSTS).Bool(p.HasSnapshots).I64(p.OpenSnapshots)
}

// DecodeReplReport parses an RmReport body.
func DecodeReplReport(r *Parser) ReplReport {
	return ReplReport{
		AppliedLSN:    r.U64(),
		MinSTS:        r.U64(),
		HasSnapshots:  r.Bool(),
		OpenSnapshots: r.I64(),
	}
}

// MaxStreamMessage bounds a single stream message (a checkpoint of a large
// database is the big one). Mirrors the request-frame limit.
const MaxStreamMessage = 256 << 20

// WriteStreamMsg writes one stream message (u32 length | opcode | body) and
// flushes it. Stream messages are written by a single goroutine per
// direction, so no locking is layered here.
func WriteStreamMsg(w *bufio.Writer, op byte, body []byte) error {
	if len(body)+1 > MaxStreamMessage {
		return fmt.Errorf("wire: stream message too large (%d bytes)", len(body))
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(body)+1))
	hdr[4] = op
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(body); err != nil {
		return err
	}
	return w.Flush()
}

// ReadStreamMsg reads one stream message, returning its opcode and body.
// The body is freshly allocated; apply loops that can recycle their read
// buffer should use ReadStreamMsgInto.
func ReadStreamMsg(r *bufio.Reader) (op byte, body []byte, err error) {
	op, body, _, err = ReadStreamMsgInto(r, nil)
	return op, body, err
}

// ReadStreamMsgInto reads one stream message into scratch, growing it as
// needed, and returns the opcode, the body, and the (possibly regrown)
// scratch buffer for the caller's next read. The body aliases scratch and is
// valid only until the buffer's next use; the Rm* decoders all copy out, so
// a caller that fully decodes each message before the next read is safe.
// Scratch capacity above MaxFrame is trimmed on the way in so one huge
// bootstrap checkpoint does not pin its buffer for the life of the stream.
func ReadStreamMsgInto(r *bufio.Reader, scratch []byte) (op byte, body, scratch2 []byte, err error) {
	if cap(scratch) > MaxFrame {
		scratch = nil
	}
	// The length prefix is read into scratch too: a local array would escape
	// to the heap through the io.ReadFull interface call (one allocation per
	// message).
	if cap(scratch) < 4 {
		scratch = make([]byte, 512)
	}
	hb := scratch[:4]
	if _, err := io.ReadFull(r, hb); err != nil {
		return 0, nil, scratch, err
	}
	n := binary.BigEndian.Uint32(hb)
	if n == 0 || n > MaxStreamMessage {
		return 0, nil, scratch, fmt.Errorf("wire: bad stream message length %d", n)
	}
	if uint32(cap(scratch)) < n {
		scratch = make([]byte, n)
	}
	buf := scratch[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, scratch, err
	}
	return buf[0], buf[1:n], scratch, nil
}
