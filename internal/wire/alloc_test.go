package wire

import (
	"bufio"
	"bytes"
	"testing"
)

// TestFrameZeroAllocSteadyState pins the steady-state allocation count of
// the frame hot path — WriteFrame (pooled assembly buffer) plus
// ReadFrameInto (caller-recycled read buffer) — to zero. A regression here
// means per-request garbage on every server round trip.
func TestFrameZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	body := bytes.Repeat([]byte{0xAB}, 256)
	buf := bytes.NewBuffer(make([]byte, 0, 4096))
	var scratch []byte

	// Warm up: populate the frame pool and grow the scratch buffer.
	for i := 0; i < 4; i++ {
		buf.Reset()
		if _, err := WriteFrame(buf, OpPing, body); err != nil {
			t.Fatal(err)
		}
		var err error
		_, _, scratch, err = ReadFrameInto(buf, scratch)
		if err != nil {
			t.Fatal(err)
		}
	}

	allocs := testing.AllocsPerRun(200, func() {
		buf.Reset()
		if _, err := WriteFrame(buf, OpPing, body); err != nil {
			t.Fatal(err)
		}
		op, rb, sc, err := ReadFrameInto(buf, scratch)
		scratch = sc
		if err != nil || op != OpPing || len(rb) != len(body) {
			t.Fatalf("round trip: op=%d len=%d err=%v", op, len(rb), err)
		}
	})
	if allocs != 0 {
		t.Fatalf("frame round trip allocates %.1f times per op, want 0", allocs)
	}
}

// TestBuilderPoolZeroAlloc pins the pooled request-builder cycle (the
// client's per-request body assembly) to zero steady-state allocations.
func TestBuilderPoolZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	for i := 0; i < 4; i++ {
		b := GetBuilder()
		b.U32(7).U64(42).Str("warmup")
		PutBuilder(b)
	}
	allocs := testing.AllocsPerRun(200, func() {
		b := GetBuilder()
		b.U32(7).U64(42).Str("steady-state")
		if b.Len() == 0 {
			t.Fatal("empty body")
		}
		PutBuilder(b)
	})
	if allocs != 0 {
		t.Fatalf("builder cycle allocates %.1f times per op, want 0", allocs)
	}
}

// TestStreamMsgZeroAllocSteadyState pins the replication apply loop's read
// path (ReadStreamMsgInto with a recycled buffer) to zero steady-state
// allocations.
func TestStreamMsgZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	// Pre-encode a stream of identical messages to read back.
	var raw bytes.Buffer
	payload := bytes.Repeat([]byte{0xCD}, 128)
	const msgs = 256
	bw := newTestBufioWriter(&raw)
	for i := 0; i < msgs; i++ {
		if err := WriteStreamMsg(bw, RmRecord, payload); err != nil {
			t.Fatal(err)
		}
	}
	br := newTestBufioReader(bytes.NewReader(raw.Bytes()))
	var scratch []byte
	var err error
	_, _, scratch, err = ReadStreamMsgInto(br, scratch)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(msgs-32, func() {
		op, body, sc, err := ReadStreamMsgInto(br, scratch)
		scratch = sc
		if err != nil || op != RmRecord || len(body) != len(payload) {
			t.Fatalf("stream msg: op=%d len=%d err=%v", op, len(body), err)
		}
	})
	if allocs != 0 {
		t.Fatalf("stream read allocates %.1f times per op, want 0", allocs)
	}
}

func newTestBufioWriter(w *bytes.Buffer) *bufio.Writer { return bufio.NewWriter(w) }

func newTestBufioReader(r *bytes.Reader) *bufio.Reader { return bufio.NewReader(r) }
