package wire

import (
	"testing"
)

// TestStatsReadGateTrailerRoundTrip pins the read-gate counters' place in
// the STATS frame: they trail the HTAP block, round-trip intact, and a frame
// truncated before them (an older peer's encoding) still decodes cleanly
// with the counters zero.
func TestStatsReadGateTrailerRoundTrip(t *testing.T) {
	in := Stats{
		Statements:      11,
		ReplRole:        "replica",
		ReplAppliedLSN:  42,
		ReplPrimaryLSN:  99,
		ReadGateWaits:   7,
		ReadGateBounces: 3,
	}
	var w Builder
	in.Encode(&w)
	out := DecodeStats(NewParser(w.Take()))
	if out.ReadGateWaits != 7 || out.ReadGateBounces != 3 {
		t.Fatalf("round trip: waits=%d bounces=%d", out.ReadGateWaits, out.ReadGateBounces)
	}
	if out.ReplAppliedLSN != 42 || out.ReplPrimaryLSN != 99 {
		t.Fatalf("earlier fields disturbed: %+v", out)
	}

	// Truncate the 16-byte gate trailer off: an old peer's frame.
	var w2 Builder
	in.Encode(&w2)
	body := w2.Take()
	old := DecodeStats(NewParser(body[: len(body)-16 : len(body)-16]))
	if old.ReadGateWaits != 0 || old.ReadGateBounces != 0 {
		t.Fatalf("old-peer decode invented counters: %+v", old)
	}
	if old.Statements != 11 || old.ReplAppliedLSN != 42 {
		t.Fatalf("old-peer decode lost earlier fields: %+v", old)
	}
}

// TestExecTokenSuffixRoundTrip pins the request-side token framing: the
// trailing min-LSN is optional, present-when-nonzero, and reading it the way
// the server does (only when bytes remain) recovers exactly what the client
// sent — including the token-less legacy form.
func TestExecTokenSuffixRoundTrip(t *testing.T) {
	decode := func(body []byte) (string, uint64) {
		r := NewParser(body)
		sqlText := r.Str()
		var tok uint64
		if r.Rest() > 0 {
			tok = r.U64()
		}
		if r.Err() != nil || r.Rest() != 0 {
			t.Fatalf("decode failed: err=%v rest=%d", r.Err(), r.Rest())
		}
		return sqlText, tok
	}

	var w Builder
	w.Str("SELECT 1").U64(777)
	if s, tok := decode(w.Take()); s != "SELECT 1" || tok != 777 {
		t.Fatalf("tokened decode: %q %d", s, tok)
	}
	var w2 Builder
	w2.Str("SELECT 1")
	if s, tok := decode(w2.Take()); s != "SELECT 1" || tok != 0 {
		t.Fatalf("legacy decode: %q %d", s, tok)
	}
}

// FuzzDecodeStats: the STATS decoder sees frames from peers of any vintage
// (and, transitively, any truncation the trailer rules allow), so it must
// never panic on arbitrary bytes — garbage degrades to the sticky parser
// error or zero fields, never a crash.
func FuzzDecodeStats(f *testing.F) {
	var w Builder
	seed := Stats{Statements: 1, ReadGateWaits: 2, ReadGateBounces: 3}
	seed.Encode(&w)
	full := w.Take()
	f.Add(full)
	f.Add(full[:len(full)-16]) // old peer: no gate trailer
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, body []byte) {
		_ = DecodeStats(NewParser(body))
	})
}

// FuzzExecTokenSuffix: any (sql, token) pair survives the optional-suffix
// framing, and the decoder never reads a token that was not sent.
func FuzzExecTokenSuffix(f *testing.F) {
	f.Add("SELECT 1", uint64(0))
	f.Add("SELECT 1", uint64(777))
	f.Add("", uint64(1))
	f.Fuzz(func(t *testing.T, sqlText string, tok uint64) {
		var w Builder
		w.Str(sqlText)
		if tok > 0 {
			w.U64(tok)
		}
		r := NewParser(w.Take())
		gotSQL := r.Str()
		var gotTok uint64
		if r.Rest() > 0 {
			gotTok = r.U64()
		}
		if r.Err() != nil {
			t.Fatalf("decode error: %v", r.Err())
		}
		if gotSQL != sqlText || gotTok != tok {
			t.Fatalf("round trip: %q %d -> %q %d", sqlText, tok, gotSQL, gotTok)
		}
	})
}
