package wire

import (
	"bytes"
	"testing"
)

// BenchmarkWireFrameRoundTrip measures one frame encode+decode — the cost
// every request, response, and shipped WAL record pays on the wire.
func BenchmarkWireFrameRoundTrip(b *testing.B) {
	body := make([]byte, 256)
	for i := range body {
		body[i] = byte(i)
	}
	var buf bytes.Buffer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if _, err := WriteFrame(&buf, OpPing, body); err != nil {
			b.Fatal(err)
		}
		op, got, err := ReadFrame(&buf)
		if err != nil || op != OpPing || len(got) != len(body) {
			b.Fatalf("op=%d len=%d err=%v", op, len(got), err)
		}
	}
}

// BenchmarkWireFrameRoundTripPooled is the same round trip on the reuse
// path the server loop runs: pooled write assembly plus a caller-recycled
// read buffer. Steady state must be allocation-free (see alloc_test.go).
func BenchmarkWireFrameRoundTripPooled(b *testing.B) {
	body := make([]byte, 256)
	for i := range body {
		body[i] = byte(i)
	}
	buf := bytes.NewBuffer(make([]byte, 0, 4096))
	var scratch []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if _, err := WriteFrame(buf, OpPing, body); err != nil {
			b.Fatal(err)
		}
		op, got, sc, err := ReadFrameInto(buf, scratch)
		scratch = sc
		if err != nil || op != OpPing || len(got) != len(body) {
			b.Fatalf("op=%d len=%d err=%v", op, len(got), err)
		}
	}
}
