// Package wire defines the length-prefixed binary protocol spoken between
// internal/server and internal/client: frame layout, request verbs, response
// statuses, value codecs, and the mapping between engine errors and wire
// error codes. Both ends share this package so the encoding is written once.
//
// Every frame is
//
//	uint32 big-endian length | 1 byte opcode/status | body
//
// where length counts the opcode byte plus the body. Requests carry a verb
// opcode; responses carry StOK or StErr. The protocol is strictly
// request/response in order, which makes pipelining trivial: a client may
// write any number of request frames before reading responses, and the
// server answers them in arrival order.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"hybridgc/internal/core"
	"hybridgc/internal/ts"
)

// Protocol identity.
const (
	// Magic opens the HELLO body; a server reading anything else hangs up.
	Magic = "HGC1"
	// Version is the protocol revision negotiated in HELLO.
	Version = 1
	// MaxFrame bounds one frame so a corrupt length prefix cannot make
	// either end allocate unboundedly.
	MaxFrame = 16 << 20
)

// Request verbs.
const (
	OpHello byte = iota + 1
	OpPing
	OpStats
	OpExec
	OpBegin
	OpCommit
	OpRollback
	OpQOpen
	OpQFetch
	OpQClose
	OpCreateTable
	OpTableIDs
	OpGet
	OpInsert
	OpUpdate
	OpDelete
	OpScan
	// OpReplStream hijacks the connection into a full-duplex replication
	// stream: after the server's StOK acceptance, the request/response
	// discipline ends — the primary pushes Rm* messages (see repl.go) and
	// the replica writes RmReport frames back on the same connection.
	OpReplStream
	// OpBeginShard begins a transaction pinned to one shard (U32 shard,
	// Bool transSI) — the sharded engine's single-shard fast path.
	OpBeginShard
	// OpInsertAt is OpInsert with a shard-placement hint (U32 tid, U32
	// shard, Bytes img); a single-node server treats it as OpInsert.
	OpInsertAt
	// OpSetPlacement installs a table's shard-placement policy (U32 tid,
	// U8 kind, U64 size, U32 shard) before the table receives rows.
	OpSetPlacement
	// OpHTAPEnable arms the background row→column migrator for a SQL table
	// (Str table name) on every shard.
	OpHTAPEnable
	// OpAggregate runs a column-lane aggregate remotely (Str table, U8 op:
	// 0=COUNT 1=SUM 2=MIN 3=MAX, Str column, Str groupBy — both may be
	// empty). The response carries a SELECT-shaped result: PutStrings
	// column names, then PutRows. Idempotent, so clients may retry it.
	OpAggregate
)

// Response statuses.
const (
	StOK  byte = 0
	StErr byte = 1
)

// Consistency tokens (read scale-out). A session token is a WAL LSN: the
// primary's stream head right after the session's last commit. HELLO, EXEC
// and QOPEN requests may append a trailing big-endian u64 min-LSN token
// after their documented body — servers parse it only when trailing bytes
// remain, so token-less frames from older clients work unchanged, and
// clients omit a zero token so older servers (which reject trailing request
// bytes) interoperate too. A replica receiving a token waits for its applier
// to reach the LSN or bounces with ECodeReplicaBehind. In the other
// direction, COMMIT responses and EXEC responses append a trailing u64
// commit-LSN token that older clients simply never read.

// Wire error codes. The canonical engine errors travel as codes so the
// client can rehydrate them into the sentinels core.IsTransient and
// errors.Is understand — PR 1's degradation ladder propagates to remote
// callers through this table.
const (
	ECodeGeneric uint16 = iota
	ECodeTableNotFound
	ECodeRecordNotFound
	ECodeWriteConflict
	ECodeVersionPressure
	ECodeFailStop
	ECodeSnapshotKilled
	ECodeCursorClosed
	ECodeOutOfScope
	ECodeNoTransaction
	ECodeInTransaction
	ECodeBadRequest
	ECodeDraining
	ECodeTooManyConns
	ECodeAuth
	ECodeReadOnly
	ECodeReplTooOld
	ECodeReplDemoted
	ECodeUnavailable
	// ECodeReplicaBehind rehydrates into the transient core.ErrReplicaBehind:
	// a replica that has not yet applied up to the session's consistency
	// token bounces the read so the client can retry on another endpoint.
	ECodeReplicaBehind
)

// Protocol-level sentinels (the engine ones live in internal/core).
var (
	// ErrBadRequest reports a malformed or out-of-protocol frame.
	ErrBadRequest = errors.New("wire: bad request")
	// ErrDraining reports a server refusing new work during graceful drain.
	ErrDraining = errors.New("wire: server is draining")
	// ErrTooManyConns reports the server's connection limit reached.
	ErrTooManyConns = errors.New("wire: connection limit reached")
	// ErrAuth reports a rejected handshake token.
	ErrAuth = errors.New("wire: authentication failed")
	// ErrNoTransaction and ErrInTransaction mirror the SQL session state
	// errors without importing the SQL layer into the protocol.
	ErrNoTransaction = errors.New("wire: no transaction in progress")
	ErrInTransaction = errors.New("wire: transaction already in progress")
	// ErrReplTooOld reports a replica resuming from an LSN whose segments
	// the primary no longer retains; the replica must re-bootstrap.
	ErrReplTooOld = errors.New("wire: replication stream position no longer retained")
	// ErrReplDemoted reports a replica the primary demoted for exceeding the
	// lag bound: its horizon pin and segment-retention floor were dropped,
	// and it must re-bootstrap from a fresh checkpoint.
	ErrReplDemoted = errors.New("wire: replica demoted for exceeding the lag bound")
)

// codeTable pairs each non-generic code with its sentinel, in both
// directions.
var codeTable = []struct {
	code uint16
	err  error
}{
	{ECodeTableNotFound, core.ErrTableNotFound},
	{ECodeRecordNotFound, core.ErrRecordNotFound},
	{ECodeWriteConflict, core.ErrWriteConflict},
	{ECodeVersionPressure, core.ErrVersionPressure},
	{ECodeFailStop, core.ErrFailStop},
	{ECodeSnapshotKilled, core.ErrSnapshotKilled},
	{ECodeCursorClosed, core.ErrCursorClosed},
	{ECodeOutOfScope, core.ErrOutOfScope},
	{ECodeBadRequest, ErrBadRequest},
	{ECodeDraining, ErrDraining},
	{ECodeTooManyConns, ErrTooManyConns},
	{ECodeAuth, ErrAuth},
	{ECodeNoTransaction, ErrNoTransaction},
	{ECodeInTransaction, ErrInTransaction},
	{ECodeReadOnly, core.ErrReadOnly},
	{ECodeReplTooOld, ErrReplTooOld},
	{ECodeReplDemoted, ErrReplDemoted},
	// Connectivity classification (core.IsTransient's remote half): a proxy
	// or shard router can answer for an unreachable backend with a code that
	// rehydrates into the transient core.ErrUnavailable.
	{ECodeUnavailable, core.ErrUnavailable},
	{ECodeReplicaBehind, core.ErrReplicaBehind},
}

// ErrorCode maps an error to its wire code (ECodeGeneric when unknown).
func ErrorCode(err error) uint16 {
	for _, e := range codeTable {
		if errors.Is(err, e.err) {
			return e.code
		}
	}
	return ECodeGeneric
}

// Error is a server-reported failure carried over the wire. Unwrap exposes
// the sentinel for its code, so errors.Is(err, core.ErrWriteConflict) — and
// therefore core.IsTransient — work on the client side exactly as they do
// in-process.
type Error struct {
	Code uint16
	Msg  string
}

// Error implements the error interface.
func (e *Error) Error() string { return e.Msg }

// Unwrap returns the sentinel the code stands for, or nil for generic
// errors.
func (e *Error) Unwrap() error {
	for _, t := range codeTable {
		if t.code == e.Code {
			return t.err
		}
	}
	return nil
}

// maxPooledBuf caps the capacity of buffers kept in the frame and builder
// pools. Occasional giant frames (bulk scans, checkpoints) would otherwise
// pin megabytes in every pool slot forever.
const maxPooledBuf = 64 << 10

// framePool recycles the scratch buffer WriteFrame assembles frames in.
type frameBuf struct{ b []byte }

var framePool = sync.Pool{New: func() any { return new(frameBuf) }}

// WriteFrame writes one frame: the length prefix, the opcode/status byte,
// and the body, issued as a single Write call so an unbuffered writer (the
// client's net.Conn) sends one packet per frame. The frame is assembled in
// a pooled scratch buffer, so the steady-state cost is one copy and zero
// allocations. It returns the total bytes written.
func WriteFrame(w io.Writer, op byte, body []byte) (int, error) {
	if len(body)+1 > MaxFrame {
		return 0, fmt.Errorf("wire: frame of %d bytes exceeds limit", len(body)+1)
	}
	fb := framePool.Get().(*frameBuf)
	buf := append(fb.b[:0], 0, 0, 0, 0, op)
	binary.BigEndian.PutUint32(buf[:4], uint32(len(body)+1))
	buf = append(buf, body...)
	n, err := w.Write(buf)
	if cap(buf) > maxPooledBuf {
		buf = nil
	}
	fb.b = buf
	framePool.Put(fb)
	return n, err
}

// ReadFrame reads one frame, returning the opcode/status byte and the body.
// The body is freshly allocated and owned by the caller; loops that can
// recycle their read buffer should use ReadFrameInto.
func ReadFrame(r io.Reader) (byte, []byte, error) {
	op, body, _, err := ReadFrameInto(r, nil)
	return op, body, err
}

// ReadFrameInto reads one frame into scratch, growing it as needed, and
// returns the opcode/status byte, the body, and the (possibly regrown)
// scratch buffer for the caller to keep for the next read. The body aliases
// scratch: it is valid only until the next use of the buffer, so callers
// must finish decoding (Parser accessors copy out) before reading again.
func ReadFrameInto(r io.Reader, scratch []byte) (byte, []byte, []byte, error) {
	// The length prefix is read into scratch too: a local array would escape
	// to the heap through the io.ReadFull interface call, costing one
	// allocation per frame — the very thing this function exists to avoid.
	if cap(scratch) < 4 {
		scratch = make([]byte, 512)
	}
	hb := scratch[:4]
	if _, err := io.ReadFull(r, hb); err != nil {
		return 0, nil, scratch, err
	}
	n := binary.BigEndian.Uint32(hb)
	if n < 1 || n > MaxFrame {
		return 0, nil, scratch, fmt.Errorf("wire: frame length %d out of range", n)
	}
	if uint32(cap(scratch)) < n {
		scratch = make([]byte, n)
	}
	buf := scratch[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, scratch, err
	}
	return buf[0], buf[1:n], scratch, nil
}

// --- body codec ---

// Builder appends wire values to a request or response body.
type Builder struct{ b []byte }

// U8 appends one byte.
func (w *Builder) U8(v byte) *Builder { w.b = append(w.b, v); return w }

// Raw appends bytes without a length prefix (fixed-width fields like the
// handshake magic).
func (w *Builder) Raw(v []byte) *Builder { w.b = append(w.b, v...); return w }

// U16 appends a big-endian uint16.
func (w *Builder) U16(v uint16) *Builder {
	w.b = binary.BigEndian.AppendUint16(w.b, v)
	return w
}

// U32 appends a big-endian uint32.
func (w *Builder) U32(v uint32) *Builder {
	w.b = binary.BigEndian.AppendUint32(w.b, v)
	return w
}

// U64 appends a big-endian uint64.
func (w *Builder) U64(v uint64) *Builder {
	w.b = binary.BigEndian.AppendUint64(w.b, v)
	return w
}

// I64 appends a big-endian int64.
func (w *Builder) I64(v int64) *Builder { return w.U64(uint64(v)) }

// Bool appends a 0/1 byte.
func (w *Builder) Bool(v bool) *Builder {
	if v {
		return w.U8(1)
	}
	return w.U8(0)
}

// Bytes appends a length-prefixed byte slice.
func (w *Builder) Bytes(v []byte) *Builder {
	w.U32(uint32(len(v)))
	w.b = append(w.b, v...)
	return w
}

// Str appends a length-prefixed string.
func (w *Builder) Str(v string) *Builder {
	w.U32(uint32(len(v)))
	w.b = append(w.b, v...)
	return w
}

// Take returns the accumulated body. The slice aliases the builder's buffer
// and is invalidated by Reset.
func (w *Builder) Take() []byte { return w.b }

// Reset empties the builder for reuse, keeping its buffer.
func (w *Builder) Reset() *Builder { w.b = w.b[:0]; return w }

// Len returns the accumulated body length.
func (w *Builder) Len() int { return len(w.b) }

var builderPool = sync.Pool{New: func() any { return new(Builder) }}

// GetBuilder returns an empty pooled Builder. Return it with PutBuilder once
// the body from Take has been written (WriteFrame copies it out, so putting
// the builder back right after the write is safe).
func GetBuilder() *Builder { return builderPool.Get().(*Builder).Reset() }

// PutBuilder recycles a builder obtained from GetBuilder.
func PutBuilder(b *Builder) {
	if cap(b.b) > maxPooledBuf {
		b.b = nil
	}
	builderPool.Put(b)
}

// Parser consumes wire values from a body with a sticky error: after the
// first short read every subsequent accessor returns a zero value, and Err
// reports the failure once at the end.
type Parser struct {
	b    []byte
	off  int
	fail bool
}

// NewParser wraps a body.
func NewParser(b []byte) *Parser { return &Parser{b: b} }

func (r *Parser) take(n int) []byte {
	if r.fail || r.off+n > len(r.b) {
		r.fail = true
		return nil
	}
	v := r.b[r.off : r.off+n]
	r.off += n
	return v
}

// Raw reads n bytes without a length prefix (fixed-width fields like the
// handshake magic).
func (r *Parser) Raw(n int) []byte {
	v := r.take(n)
	if v == nil {
		return nil
	}
	return append([]byte(nil), v...)
}

// U8 reads one byte.
func (r *Parser) U8() byte {
	v := r.take(1)
	if v == nil {
		return 0
	}
	return v[0]
}

// U16 reads a big-endian uint16.
func (r *Parser) U16() uint16 {
	v := r.take(2)
	if v == nil {
		return 0
	}
	return binary.BigEndian.Uint16(v)
}

// U32 reads a big-endian uint32.
func (r *Parser) U32() uint32 {
	v := r.take(4)
	if v == nil {
		return 0
	}
	return binary.BigEndian.Uint32(v)
}

// U64 reads a big-endian uint64.
func (r *Parser) U64() uint64 {
	v := r.take(8)
	if v == nil {
		return 0
	}
	return binary.BigEndian.Uint64(v)
}

// I64 reads a big-endian int64.
func (r *Parser) I64() int64 { return int64(r.U64()) }

// Bool reads a 0/1 byte.
func (r *Parser) Bool() bool { return r.U8() != 0 }

// Bytes reads a length-prefixed byte slice (copied out of the frame).
func (r *Parser) Bytes() []byte {
	n := int(r.U32())
	v := r.take(n)
	if v == nil {
		return nil
	}
	return append([]byte(nil), v...)
}

// Str reads a length-prefixed string.
func (r *Parser) Str() string {
	n := int(r.U32())
	v := r.take(n)
	if v == nil {
		return ""
	}
	return string(v)
}

// Err reports whether any accessor ran past the body, or trailing bytes
// remain unread.
func (r *Parser) Err() error {
	if r.fail {
		return fmt.Errorf("%w: truncated body", ErrBadRequest)
	}
	return nil
}

// Rest reports whether unread bytes remain (a malformed request).
func (r *Parser) Rest() int { return len(r.b) - r.off }

// --- datum codec ---
//
// SQL values travel as a type tag byte followed by the value. The tags
// mirror sql.ColType but are fixed here so the wire format is independent
// of that package's internals.

// Datum type tags.
const (
	DatumInt  byte = 1
	DatumText byte = 2
)

// Datum is one SQL value in wire form.
type Datum struct {
	Tag byte
	I   int64
	S   string
}

// String renders the datum for display.
func (d Datum) String() string {
	if d.Tag == DatumInt {
		return fmt.Sprint(d.I)
	}
	return d.S
}

// PutDatum appends one datum.
func PutDatum(w *Builder, d Datum) {
	w.U8(d.Tag)
	if d.Tag == DatumInt {
		w.I64(d.I)
	} else {
		w.Str(d.S)
	}
}

// GetDatum reads one datum.
func GetDatum(r *Parser) Datum {
	tag := r.U8()
	if tag == DatumInt {
		return Datum{Tag: DatumInt, I: r.I64()}
	}
	return Datum{Tag: DatumText, S: r.Str()}
}

// PutRows appends a row block: u32 row count, then per row a u16 datum
// count and the datums.
func PutRows(w *Builder, rows [][]Datum) {
	w.U32(uint32(len(rows)))
	for _, row := range rows {
		w.U16(uint16(len(row)))
		for _, d := range row {
			PutDatum(w, d)
		}
	}
}

// GetRows reads a row block.
func GetRows(r *Parser) [][]Datum {
	n := int(r.U32())
	if n < 0 || n > MaxFrame {
		return nil
	}
	rows := make([][]Datum, 0, min(n, 4096))
	for i := 0; i < n; i++ {
		m := int(r.U16())
		row := make([]Datum, 0, m)
		for j := 0; j < m; j++ {
			row = append(row, GetDatum(r))
		}
		if r.Err() != nil {
			return nil
		}
		rows = append(rows, row)
	}
	return rows
}

// PutStrings appends a string list.
func PutStrings(w *Builder, ss []string) {
	w.U16(uint16(len(ss)))
	for _, s := range ss {
		w.Str(s)
	}
}

// GetStrings reads a string list.
func GetStrings(r *Parser) []string {
	n := int(r.U16())
	out := make([]string, 0, min(n, 1024))
	for i := 0; i < n; i++ {
		out = append(out, r.Str())
	}
	return out
}

// --- STATS codec ---

// Stats is the STATS verb's payload: the engine indicators of core.Stats
// that matter remotely, plus the server's own service-level counters and
// request-latency percentiles.
type Stats struct {
	// Engine indicators (the Figure 2 set).
	Statements        int64
	VersionsLive      int64
	VersionsLiveBytes int64
	VersionsCreated   int64
	VersionsReclaimed int64
	VersionsMigrated  int64
	ActiveSnapshots   int64
	CurrentCID        ts.CID
	GlobalHorizon     ts.CID
	ActiveCIDRange    ts.CID
	TxnsCommitted     int64
	GroupsCommitted   int64
	FailStop          bool

	// Degradation ladder (PR 1).
	PressureEnabled       bool
	PressureLevel         string
	PressureLive          int64
	PressureSoft          int64
	PressureHard          int64
	PressureSoftTrips     int64
	PressureEmergencies   int64
	PressureBackpressured int64
	PressureRejected      int64
	PressureEvicted       int64

	// Service layer.
	Conns         int64
	ConnsTotal    int64
	Requests      int64
	RequestErrors int64
	BytesIn       int64
	BytesOut      int64
	CursorsOpen   int64
	CursorsReaped int64
	LatMean       time.Duration
	LatP50        time.Duration
	LatP95        time.Duration
	LatP99        time.Duration

	// Replication (PR 3). Role is "" when replication is not configured,
	// "primary" on a stream source, "replica" on an applier.
	ReplRole string
	// ReplUpstream is the primary's address (replica side).
	ReplUpstream string
	// ReplAppliedLSN is the next LSN the applier expects (replica side).
	ReplAppliedLSN uint64
	// ReplPrimaryLSN is the stream head: the primary's next append LSN
	// (primary side), or the last heartbeat value seen (replica side).
	ReplPrimaryLSN uint64
	// ReplRecordsSent / ReplRecordsApplied count stream records by role.
	ReplRecordsSent    int64
	ReplRecordsApplied int64
	// ReplReconnects counts replica-side stream re-establishments.
	ReplReconnects int64
	// ReplDemotions counts replicas demoted for exceeding the lag bound.
	ReplDemotions int64
	// Replicas is the primary's per-replica view.
	Replicas []ReplicaStat

	// Shards is the per-shard breakdown on a sharded engine (empty on a
	// single-node server, where the top-level fields already tell the whole
	// story). Appended at the end of the frame so older peers simply never
	// read it.
	Shards []ShardStat

	// HTAP is the per-table column-lane breakdown (empty when no lanes are
	// enabled). Appended after Shards; decoders guard on remaining bytes so
	// frames from older peers parse cleanly.
	HTAP []HTAPStat

	// Read-gate counters (PR 9's read scale-out). On a replica that gates
	// reads on session consistency tokens: how many requests were admitted
	// only after waiting for the applier, and how many were bounced with
	// ErrReplicaBehind because the wait deadline passed. Appended after HTAP
	// behind the same remaining-bytes guard, so frames from older peers
	// parse cleanly.
	ReadGateWaits   int64
	ReadGateBounces int64
}

// HTAPStat is one table's column-lane state, summed across shards: how much
// of the table is columnar, what still rides the row-store delta, and how
// far the migrator trails the commit timestamp.
type HTAPStat struct {
	Name         string
	Table        uint32
	Chunks       int64
	ChunkRows    int64
	DeltaRows    int64
	DirtyRows    int64
	MigratedRows int64
	Watermark    uint64
	Lag          uint64
	Passes       int64
}

// ShardStat is one shard's engine indicators — the subset gcmon renders
// per-shard and the routing client needs for awareness.
type ShardStat struct {
	VersionsLive      int64
	VersionsReclaimed int64
	ActiveSnapshots   int64
	TxnsCommitted     int64
	CurrentCID        ts.CID
	GlobalHorizon     ts.CID
	FailStop          bool
}

// ReplicaStat is one replica's state as the primary tracks it.
type ReplicaStat struct {
	ID         string
	Connected  bool
	Demoted    bool
	AppliedLSN uint64
	// PinnedSTS is the snapshot timestamp this replica pins in the cluster
	// GC horizon (0 = no pin: no open snapshots reported).
	PinnedSTS ts.CID
	// FloorSegment is the lowest log segment retained for this replica.
	FloorSegment uint64
	// SegmentLag is the primary's active segment minus FloorSegment.
	SegmentLag int64
	// LastReportAge is the time since the replica's last report.
	LastReportAge time.Duration
}

// Encode appends the stats payload.
func (s *Stats) Encode(w *Builder) {
	w.I64(s.Statements).I64(s.VersionsLive).I64(s.VersionsLiveBytes)
	w.I64(s.VersionsCreated).I64(s.VersionsReclaimed).I64(s.VersionsMigrated)
	w.I64(s.ActiveSnapshots)
	w.U64(uint64(s.CurrentCID)).U64(uint64(s.GlobalHorizon)).U64(uint64(s.ActiveCIDRange))
	w.I64(s.TxnsCommitted).I64(s.GroupsCommitted).Bool(s.FailStop)
	w.Bool(s.PressureEnabled).Str(s.PressureLevel)
	w.I64(s.PressureLive).I64(s.PressureSoft).I64(s.PressureHard)
	w.I64(s.PressureSoftTrips).I64(s.PressureEmergencies).I64(s.PressureBackpressured)
	w.I64(s.PressureRejected).I64(s.PressureEvicted)
	w.I64(s.Conns).I64(s.ConnsTotal).I64(s.Requests).I64(s.RequestErrors)
	w.I64(s.BytesIn).I64(s.BytesOut).I64(s.CursorsOpen).I64(s.CursorsReaped)
	w.I64(int64(s.LatMean)).I64(int64(s.LatP50)).I64(int64(s.LatP95)).I64(int64(s.LatP99))
	w.Str(s.ReplRole).Str(s.ReplUpstream)
	w.U64(s.ReplAppliedLSN).U64(s.ReplPrimaryLSN)
	w.I64(s.ReplRecordsSent).I64(s.ReplRecordsApplied)
	w.I64(s.ReplReconnects).I64(s.ReplDemotions)
	w.U16(uint16(len(s.Replicas)))
	for _, rs := range s.Replicas {
		w.Str(rs.ID).Bool(rs.Connected).Bool(rs.Demoted)
		w.U64(rs.AppliedLSN).U64(uint64(rs.PinnedSTS)).U64(rs.FloorSegment)
		w.I64(rs.SegmentLag).I64(int64(rs.LastReportAge))
	}
	w.U16(uint16(len(s.Shards)))
	for _, sh := range s.Shards {
		w.I64(sh.VersionsLive).I64(sh.VersionsReclaimed)
		w.I64(sh.ActiveSnapshots).I64(sh.TxnsCommitted)
		w.U64(uint64(sh.CurrentCID)).U64(uint64(sh.GlobalHorizon))
		w.Bool(sh.FailStop)
	}
	w.U16(uint16(len(s.HTAP)))
	for _, h := range s.HTAP {
		w.Str(h.Name).U32(h.Table)
		w.I64(h.Chunks).I64(h.ChunkRows).I64(h.DeltaRows).I64(h.DirtyRows)
		w.I64(h.MigratedRows).U64(h.Watermark).U64(h.Lag).I64(h.Passes)
	}
	w.I64(s.ReadGateWaits).I64(s.ReadGateBounces)
}

// DecodeStats reads a stats payload.
func DecodeStats(r *Parser) Stats {
	var s Stats
	s.Statements, s.VersionsLive, s.VersionsLiveBytes = r.I64(), r.I64(), r.I64()
	s.VersionsCreated, s.VersionsReclaimed, s.VersionsMigrated = r.I64(), r.I64(), r.I64()
	s.ActiveSnapshots = r.I64()
	s.CurrentCID, s.GlobalHorizon, s.ActiveCIDRange = ts.CID(r.U64()), ts.CID(r.U64()), ts.CID(r.U64())
	s.TxnsCommitted, s.GroupsCommitted, s.FailStop = r.I64(), r.I64(), r.Bool()
	s.PressureEnabled, s.PressureLevel = r.Bool(), r.Str()
	s.PressureLive, s.PressureSoft, s.PressureHard = r.I64(), r.I64(), r.I64()
	s.PressureSoftTrips, s.PressureEmergencies, s.PressureBackpressured = r.I64(), r.I64(), r.I64()
	s.PressureRejected, s.PressureEvicted = r.I64(), r.I64()
	s.Conns, s.ConnsTotal, s.Requests, s.RequestErrors = r.I64(), r.I64(), r.I64(), r.I64()
	s.BytesIn, s.BytesOut, s.CursorsOpen, s.CursorsReaped = r.I64(), r.I64(), r.I64(), r.I64()
	s.LatMean, s.LatP50 = time.Duration(r.I64()), time.Duration(r.I64())
	s.LatP95, s.LatP99 = time.Duration(r.I64()), time.Duration(r.I64())
	s.ReplRole, s.ReplUpstream = r.Str(), r.Str()
	s.ReplAppliedLSN, s.ReplPrimaryLSN = r.U64(), r.U64()
	s.ReplRecordsSent, s.ReplRecordsApplied = r.I64(), r.I64()
	s.ReplReconnects, s.ReplDemotions = r.I64(), r.I64()
	n := int(r.U16())
	for i := 0; i < n && r.Err() == nil; i++ {
		var rs ReplicaStat
		rs.ID, rs.Connected, rs.Demoted = r.Str(), r.Bool(), r.Bool()
		rs.AppliedLSN, rs.PinnedSTS, rs.FloorSegment = r.U64(), ts.CID(r.U64()), r.U64()
		rs.SegmentLag, rs.LastReportAge = r.I64(), time.Duration(r.I64())
		s.Replicas = append(s.Replicas, rs)
	}
	n = int(r.U16())
	for i := 0; i < n && r.Err() == nil; i++ {
		var sh ShardStat
		sh.VersionsLive, sh.VersionsReclaimed = r.I64(), r.I64()
		sh.ActiveSnapshots, sh.TxnsCommitted = r.I64(), r.I64()
		sh.CurrentCID, sh.GlobalHorizon = ts.CID(r.U64()), ts.CID(r.U64())
		sh.FailStop = r.Bool()
		s.Shards = append(s.Shards, sh)
	}
	// The HTAP trailer is absent in frames from pre-lane peers.
	if r.Err() == nil && r.Rest() > 0 {
		n = int(r.U16())
		for i := 0; i < n && r.Err() == nil; i++ {
			var h HTAPStat
			h.Name, h.Table = r.Str(), r.U32()
			h.Chunks, h.ChunkRows, h.DeltaRows, h.DirtyRows = r.I64(), r.I64(), r.I64(), r.I64()
			h.MigratedRows, h.Watermark, h.Lag, h.Passes = r.I64(), r.U64(), r.U64(), r.I64()
			s.HTAP = append(s.HTAP, h)
		}
	}
	// The read-gate trailer is absent in frames from pre-token peers.
	if r.Err() == nil && r.Rest() > 0 {
		s.ReadGateWaits, s.ReadGateBounces = r.I64(), r.I64()
	}
	return s
}
